#include "store/heap.h"

#include <algorithm>
#include <limits>

namespace dgc {

ObjectId Heap::Allocate(std::size_t slot_count) {
  std::uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = used_slots_;
    DGC_CHECK_MSG(slot + 1 <= kSlotMask, "heap slot space exhausted");
    if (slot == slabs_.size() * kSlabSize) {
      slabs_.push_back(std::make_unique<Slab>());
      mark_epoch_.resize(slabs_.size() * kSlabSize, 0);
      clean_epoch_.resize(slabs_.size() * kSlabSize, 0);
      generation_.resize(slabs_.size() * kSlabSize, 0);
      live_.resize(slabs_.size() * kSlabSize, 0);
      dirty_bits_.resize(slabs_.size() * kSlabSize / 64, 0);
      slab_dirty_.resize(slabs_.size(), 0);
    }
    ++used_slots_;
  }
  ObjectAt(slot).slots.assign(slot_count, kInvalidObject);
  live_[slot] = 1;
  ++live_count_;
  ++stats_.allocated;
  ++mutation_epoch_;
  MarkDirtySlot(slot);
  const ObjectId id = IdAt(slot);
  if (listener_ != nullptr) listener_->OnAllocate(id);
  return id;
}

void Heap::SetSlot(ObjectId id, std::size_t slot, ObjectId target) {
  Object& object = Get(id);
  DGC_CHECK_MSG(slot < object.slots.size(),
                "slot " << slot << " out of range for " << id);
  const ObjectId previous = object.slots[slot];
  object.slots[slot] = target;
  ++mutation_epoch_;
  MarkDirtySlot(SlotOf(id.index));
  // The severed edge may have been the old target's last retainer; dirty it
  // so a partial re-trace revisits its region. (Remote old targets are the
  // ref tables' problem — RemoveOutref marks the site dirty there.)
  if (previous != kInvalidObject && Exists(previous)) {
    MarkDirtySlot(SlotOf(previous.index));
  }
  if (listener_ != nullptr) listener_->OnSlotWrite(id, previous, target);
}

ObjectId Heap::GetSlot(ObjectId id, std::size_t slot) const {
  const Object& object = Get(id);
  DGC_CHECK_MSG(slot < object.slots.size(),
                "slot " << slot << " out of range for " << id);
  return object.slots[slot];
}

void Heap::Free(ObjectId id) {
  DGC_CHECK_MSG(Exists(id), "freeing nonexistent object " << id);
  DGC_CHECK_MSG(std::find(persistent_roots_.begin(), persistent_roots_.end(),
                          id) == persistent_roots_.end(),
                "freeing persistent root " << id);
  // Fire before the teardown: the listener may still read the object's slots
  // to unlink its out-edges.
  if (listener_ != nullptr) listener_->OnFree(id);
  const std::uint64_t slot = SlotOf(id.index);
  ObjectAt(slot).slots.clear();
  ObjectAt(slot).slots.shrink_to_fit();
  mark_epoch_[slot] = 0;
  clean_epoch_[slot] = 0;
  DGC_CHECK_MSG(
      generation_[slot] < std::numeric_limits<std::uint32_t>::max(),
      "generation counter exhausted for slot " << slot);
  ++generation_[slot];
  live_[slot] = 0;
  --live_count_;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  ++stats_.reclaimed;
  ++mutation_epoch_;
  // Drop the freed slot's dirty bit: ForEachDirty skips dead slots anyway,
  // and a recycled slot must not inherit stale dirt accounting.
  const std::uint64_t word = slot / 64;
  const std::uint64_t bit = 1ULL << (slot % 64);
  if ((dirty_bits_[word] & bit) != 0) {
    dirty_bits_[word] &= ~bit;
    --slab_dirty_[slot / kSlabSize];
    --dirty_count_;
  }
}

void Heap::AddPersistentRoot(ObjectId id) {
  DGC_CHECK_MSG(Exists(id), "persistent root must be local: " << id);
  DGC_CHECK(std::find(persistent_roots_.begin(), persistent_roots_.end(),
                      id) == persistent_roots_.end());
  persistent_roots_.push_back(id);
  ++mutation_epoch_;
  MarkDirtySlot(SlotOf(id.index));
}

void Heap::RemovePersistentRoot(ObjectId id) {
  const auto it =
      std::find(persistent_roots_.begin(), persistent_roots_.end(), id);
  DGC_CHECK_MSG(it != persistent_roots_.end(), id << " is not a root");
  persistent_roots_.erase(it);
  ++mutation_epoch_;
  MarkDirtySlot(SlotOf(id.index));
}

void Heap::MarkDirty(ObjectId id) {
  ++mutation_epoch_;
  if (Exists(id)) MarkDirtySlot(SlotOf(id.index));
}

void Heap::InvalidateDirtyTracking() {
  ++mutation_epoch_;
  // Conservatively dirty every live object: with no trustworthy record of
  // what changed, the next partial trace must assume everything did.
  for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
    if (live_[slot] != 0) MarkDirtySlot(slot);
  }
}

void Heap::ClearDirty() {
  std::fill(dirty_bits_.begin(), dirty_bits_.end(), 0);
  std::fill(slab_dirty_.begin(), slab_dirty_.end(), 0);
  dirty_count_ = 0;
}

void Heap::MarkDirtySlot(std::uint64_t slot) {
  const std::uint64_t word = slot / 64;
  const std::uint64_t bit = 1ULL << (slot % 64);
  if ((dirty_bits_[word] & bit) == 0) {
    dirty_bits_[word] |= bit;
    ++slab_dirty_[slot / kSlabSize];
    ++dirty_count_;
  }
}

}  // namespace dgc
