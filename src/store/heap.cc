#include "store/heap.h"

#include <algorithm>

namespace dgc {

ObjectId Heap::Allocate(std::size_t slot_count) {
  const ObjectId id{site_, next_index_++};
  Object object;
  object.slots.assign(slot_count, kInvalidObject);
  objects_.emplace(id.index, std::move(object));
  ++stats_.allocated;
  return id;
}

void Heap::SetSlot(ObjectId id, std::size_t slot, ObjectId target) {
  Object& object = Get(id);
  DGC_CHECK_MSG(slot < object.slots.size(),
                "slot " << slot << " out of range for " << id);
  object.slots[slot] = target;
}

ObjectId Heap::GetSlot(ObjectId id, std::size_t slot) const {
  const Object& object = Get(id);
  DGC_CHECK_MSG(slot < object.slots.size(),
                "slot " << slot << " out of range for " << id);
  return object.slots[slot];
}

void Heap::Free(ObjectId id) {
  DGC_CHECK_MSG(Exists(id), "freeing nonexistent object " << id);
  DGC_CHECK_MSG(std::find(persistent_roots_.begin(), persistent_roots_.end(),
                          id) == persistent_roots_.end(),
                "freeing persistent root " << id);
  objects_.erase(id.index);
  ++stats_.reclaimed;
}

void Heap::AddPersistentRoot(ObjectId id) {
  DGC_CHECK_MSG(Exists(id), "persistent root must be local: " << id);
  DGC_CHECK(std::find(persistent_roots_.begin(), persistent_roots_.end(),
                      id) == persistent_roots_.end());
  persistent_roots_.push_back(id);
}

void Heap::RemovePersistentRoot(ObjectId id) {
  const auto it =
      std::find(persistent_roots_.begin(), persistent_roots_.end(), id);
  DGC_CHECK_MSG(it != persistent_roots_.end(), id << " is not a root");
  persistent_roots_.erase(it);
}

}  // namespace dgc
