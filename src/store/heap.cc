#include "store/heap.h"

#include <algorithm>
#include <limits>

namespace dgc {

ObjectId Heap::Allocate(std::size_t slot_count) {
  std::uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = used_slots_;
    DGC_CHECK_MSG(slot + 1 <= kSlotMask, "heap slot space exhausted");
    if (slot == slabs_.size() * kSlabSize) {
      slabs_.push_back(std::make_unique<Slab>());
      mark_epoch_.resize(slabs_.size() * kSlabSize, 0);
      clean_epoch_.resize(slabs_.size() * kSlabSize, 0);
      generation_.resize(slabs_.size() * kSlabSize, 0);
      live_.resize(slabs_.size() * kSlabSize, 0);
      dirty_bits_.resize(slabs_.size() * kSlabSize / 64, 0);
      slab_dirty_.resize(slabs_.size(), 0);
    }
    ++used_slots_;
  }
  ObjectAt(slot).slots.assign(slot_count, kInvalidObject);
  live_[slot] = 1;
  ++live_count_;
  ++stats_.allocated;
  ++mutation_epoch_;
  MarkDirtySlot(slot);
  const ObjectId id = IdAt(slot);
  if (listener_ != nullptr) listener_->OnAllocate(id);
  return id;
}

void Heap::SetSlot(ObjectId id, std::size_t slot, ObjectId target) {
  Object& object = Get(id);
  DGC_CHECK_MSG(slot < object.slots.size(),
                "slot " << slot << " out of range for " << id);
  const ObjectId previous = object.slots[slot];
  object.slots[slot] = target;
  ++mutation_epoch_;
  MarkDirtySlot(SlotOf(id.index));
  // The severed edge may have been the old target's last retainer; dirty it
  // so a partial re-trace revisits its region. (Remote old targets are the
  // ref tables' problem — RemoveOutref marks the site dirty there.)
  if (previous != kInvalidObject && Exists(previous)) {
    MarkDirtySlot(SlotOf(previous.index));
  }
  if (listener_ != nullptr) listener_->OnSlotWrite(id, previous, target);
}

ObjectId Heap::GetSlot(ObjectId id, std::size_t slot) const {
  const Object& object = Get(id);
  DGC_CHECK_MSG(slot < object.slots.size(),
                "slot " << slot << " out of range for " << id);
  return object.slots[slot];
}

void Heap::Free(ObjectId id) {
  DGC_CHECK_MSG(Exists(id), "freeing nonexistent object " << id);
  DGC_CHECK_MSG(std::find(persistent_roots_.begin(), persistent_roots_.end(),
                          id) == persistent_roots_.end(),
                "freeing persistent root " << id);
  // Fire before the teardown: the listener may still read the object's slots
  // to unlink its out-edges.
  if (listener_ != nullptr) listener_->OnFree(id);
  const std::uint64_t slot = SlotOf(id.index);
  ObjectAt(slot).slots.clear();
  ObjectAt(slot).slots.shrink_to_fit();
  mark_epoch_[slot] = 0;
  clean_epoch_[slot] = 0;
  DGC_CHECK_MSG(
      generation_[slot] < std::numeric_limits<std::uint32_t>::max(),
      "generation counter exhausted for slot " << slot);
  ++generation_[slot];
  live_[slot] = 0;
  --live_count_;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  ++stats_.reclaimed;
  ++mutation_epoch_;
  // Drop the freed slot's dirty bit: ForEachDirty skips dead slots anyway,
  // and a recycled slot must not inherit stale dirt accounting.
  const std::uint64_t word = slot / 64;
  const std::uint64_t bit = 1ULL << (slot % 64);
  if ((dirty_bits_[word] & bit) != 0) {
    dirty_bits_[word] &= ~bit;
    --slab_dirty_[slot / kSlabSize];
    --dirty_count_;
  }
}

void Heap::AddPersistentRoot(ObjectId id) {
  DGC_CHECK_MSG(Exists(id), "persistent root must be local: " << id);
  DGC_CHECK(std::find(persistent_roots_.begin(), persistent_roots_.end(),
                      id) == persistent_roots_.end());
  persistent_roots_.push_back(id);
  ++mutation_epoch_;
  MarkDirtySlot(SlotOf(id.index));
}

void Heap::RemovePersistentRoot(ObjectId id) {
  const auto it =
      std::find(persistent_roots_.begin(), persistent_roots_.end(), id);
  DGC_CHECK_MSG(it != persistent_roots_.end(), id << " is not a root");
  persistent_roots_.erase(it);
  ++mutation_epoch_;
  MarkDirtySlot(SlotOf(id.index));
}

HeapImage Heap::CaptureImage() const {
  HeapImage image;
  image.slots.resize(used_slots_);
  for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
    HeapImage::SlotImage& s = image.slots[slot];
    s.generation = generation_[slot];
    s.live = live_[slot] != 0;
    if (s.live) s.slots = ObjectAt(slot).slots;
  }
  image.free_slots = free_slots_;
  image.persistent_roots = persistent_roots_;
  image.stats = stats_;
  return image;
}

void Heap::RestoreImage(const HeapImage& image) {
  DGC_CHECK_MSG(used_slots_ == 0 && live_count_ == 0,
                "RestoreImage requires a virgin heap");
  const std::uint64_t slots = image.slots.size();
  while (slabs_.size() * kSlabSize < slots) {
    slabs_.push_back(std::make_unique<Slab>());
  }
  const std::size_t capacity = slabs_.size() * kSlabSize;
  mark_epoch_.assign(capacity, 0);
  clean_epoch_.assign(capacity, 0);
  generation_.assign(capacity, 0);
  live_.assign(capacity, 0);
  dirty_bits_.assign(capacity / 64, 0);
  slab_dirty_.assign(slabs_.size(), 0);
  used_slots_ = slots;
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    const HeapImage::SlotImage& s = image.slots[slot];
    generation_[slot] = s.generation;
    if (!s.live) continue;
    live_[slot] = 1;
    ObjectAt(slot).slots = s.slots;
    ++live_count_;
  }
  free_slots_ = image.free_slots;
  persistent_roots_ = image.persistent_roots;
  stats_ = image.stats;
  // The restored state is conservatively all-dirty, exactly as after a
  // crash-restart's InvalidateDirtyTracking.
  InvalidateDirtyTracking();
}

void Heap::MarkDirty(ObjectId id) {
  ++mutation_epoch_;
  if (Exists(id)) MarkDirtySlot(SlotOf(id.index));
}

void Heap::InvalidateDirtyTracking() {
  ++mutation_epoch_;
  // Conservatively dirty every live object: with no trustworthy record of
  // what changed, the next partial trace must assume everything did.
  for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
    if (live_[slot] != 0) MarkDirtySlot(slot);
  }
}

void Heap::ClearDirty() {
  std::fill(dirty_bits_.begin(), dirty_bits_.end(), 0);
  std::fill(slab_dirty_.begin(), slab_dirty_.end(), 0);
  dirty_count_ = 0;
}

void Heap::MarkDirtySlot(std::uint64_t slot) {
  const std::uint64_t word = slot / 64;
  const std::uint64_t bit = 1ULL << (slot % 64);
  if ((dirty_bits_[word] & bit) == 0) {
    dirty_bits_[word] |= bit;
    ++slab_dirty_[slot / kSlabSize];
    ++dirty_count_;
  }
}

}  // namespace dgc
