// Per-site object store.
//
// Objects are clustered within sites (Section 2): each site owns a heap of
// objects whose slots hold references to local or remote objects. Certain
// objects are persistent roots (entry points such as name servers). The heap
// knows nothing about garbage collection beyond epoch stamps that the local
// tracer uses to avoid a clearing pass.
//
// Storage layout: objects live in fixed-size slabs addressed by a dense
// *storage slot*; `Free` recycles slots through a LIFO free list. The public
// ObjectId stays unique forever by folding a per-slot generation into the
// index — a recycled slot hands out a new id while stale ids fail Exists().
// Epoch stamps live in contiguous side arrays (not in Object) so the marking
// loop touches dense memory instead of chasing per-object nodes; this is what
// makes the local trace cache-friendly and, with per-site traces being
// independent, embarrassingly parallel.
//
// Mutation-driven dirty tracking: every state change that could alter a local
// trace's outcome — allocation, reclamation, a slot write (including the slot's
// previous target, whose reachability the overwrite may have severed), a
// root-set change — bumps a monotone mutation epoch and records the touched
// objects in per-slab dirty sets. The incremental local collector consumes
// both: an unchanged mutation epoch proves the heap quiescent since the last
// trace, and the dirty sets bound how much of the heap a future partial
// re-trace must visit. Dirtying is strictly conservative (false positives only
// cost re-tracing), and the tracking is volatile acceleration state: after a
// crash-restart the site invalidates it wholesale rather than trusting it.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace dgc {

struct Object {
  /// Reference slots; kInvalidObject means null.
  std::vector<ObjectId> slots;
};

struct HeapStats {
  std::uint64_t allocated = 0;
  std::uint64_t reclaimed = 0;
};

/// A structural copy of a heap's durable state: every used storage slot
/// (generation, liveness, reference slots), the free list in its LIFO order,
/// the persistent roots, and the allocation stats. Capturing and restoring
/// an image preserves ObjectIds exactly — slot positions, generations, and
/// the recycling order all round-trip — so a site process restarted from a
/// snapshot allocates the same ids the crashed incarnation would have.
/// Epoch stamps and dirty tracking are volatile trace-acceleration state and
/// are deliberately NOT part of the image.
struct HeapImage {
  struct SlotImage {
    std::uint32_t generation = 0;
    bool live = false;
    std::vector<ObjectId> slots;  // empty unless live
  };
  std::vector<SlotImage> slots;           // indexed by storage slot
  std::vector<std::uint32_t> free_slots;  // LIFO order preserved
  std::vector<ObjectId> persistent_roots;
  HeapStats stats;
};

/// Observer for the heap's structural mutations, fired synchronously from the
/// mutating call. Allocate/Free report object lifetimes; SetSlot reports the
/// edge-level delta (previous target severed, new target linked). A listener
/// sees every event in program order and may read the heap during OnFree (the
/// object is still intact) but must not mutate the heap reentrantly. Used by
/// the incremental distance-label maintainer; dirty tracking above stays the
/// incremental *trace* channel — the two are independent consumers of the
/// same barrier.
class HeapMutationListener {
 public:
  virtual ~HeapMutationListener() = default;
  virtual void OnAllocate(ObjectId id) = 0;
  /// Fired after the write: `source`'s slot now holds `next` (was `previous`;
  /// either may be null or remote).
  virtual void OnSlotWrite(ObjectId source, ObjectId previous,
                           ObjectId next) = 0;
  /// Fired at the top of Free, while the object and its slots still exist.
  virtual void OnFree(ObjectId id) = 0;
};

class Heap {
 public:
  /// Objects per slab. Slabs never move once allocated, so Object pointers
  /// are stable for the object's lifetime.
  static constexpr std::size_t kSlabSize = 1024;

  explicit Heap(SiteId site) : site_(site) {}

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  [[nodiscard]] SiteId site() const { return site_; }

  /// Allocates an object with `slot_count` null reference slots. Recycles a
  /// freed storage slot when one is available (LIFO, deterministic), under a
  /// fresh generation so the returned id never collides with a freed one.
  ObjectId Allocate(std::size_t slot_count);

  [[nodiscard]] bool Exists(ObjectId id) const {
    if (id.site != site_) return false;
    const std::uint64_t biased = id.index & kSlotMask;
    if (biased == 0) return false;
    const std::uint64_t slot = biased - 1;
    return slot < used_slots_ && live_[slot] != 0 &&
           generation_[slot] == GenerationOf(id.index);
  }

  [[nodiscard]] Object& Get(ObjectId id) {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    return ObjectAt(SlotOf(id.index));
  }
  [[nodiscard]] const Object& Get(ObjectId id) const {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    return ObjectAt(SlotOf(id.index));
  }

  // --- Epoch side arrays (the local tracer's mark state) ----------------

  /// Epoch of the last local trace that marked the object reachable
  /// (0 = never, reset when a storage slot is recycled).
  [[nodiscard]] std::uint64_t mark_epoch(ObjectId id) const {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    return mark_epoch_[SlotOf(id.index)];
  }
  /// Epoch of the last local trace that marked the object *clean*, i.e.
  /// reached from a persistent/application root or a clean inref. An object
  /// with mark_epoch == E but clean_epoch != E was reached only from
  /// suspected inrefs in trace E.
  [[nodiscard]] std::uint64_t clean_epoch(ObjectId id) const {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    return clean_epoch_[SlotOf(id.index)];
  }
  void set_mark_epoch(ObjectId id, std::uint64_t epoch) {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    mark_epoch_[SlotOf(id.index)] = epoch;
  }
  void set_clean_epoch(ObjectId id, std::uint64_t epoch) {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    clean_epoch_[SlotOf(id.index)] = epoch;
  }

  /// One decoded live object: its slots plus its epoch cells, so the marking
  /// loop pays the id decode once per object. The pointers are valid until
  /// the next Allocate or Free (Allocate may grow the side arrays).
  struct Cell {
    Object* object;
    std::uint64_t* mark_epoch;
    std::uint64_t* clean_epoch;
  };
  [[nodiscard]] Cell GetCell(ObjectId id) {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    const std::uint64_t slot = SlotOf(id.index);
    return Cell{&ObjectAt(slot), &mark_epoch_[slot], &clean_epoch_[slot]};
  }

  // --- Raw slot view (intra-site parallel marking and sweeping) ---------
  //
  // The work-stealing marker and the parallel sweep address the heap by
  // storage slot: slots are dense, slab-aligned, and stable for a trace's
  // lifetime (no Allocate/Free runs while a trace computes), so slot ranges
  // partition the heap into independent shards.

  /// Slot of an object id's index (low half minus the +1 bias). Only valid
  /// for indices minted by this heap layout.
  static constexpr std::uint64_t SlotOfIndex(std::uint64_t index) {
    return SlotOf(index);
  }
  /// Slab shard that owns a storage slot.
  static constexpr std::size_t ShardOfSlot(std::uint64_t slot) {
    return static_cast<std::size_t>(slot / kSlabSize);
  }

  [[nodiscard]] bool SlotLive(std::uint64_t slot) const {
    return slot < used_slots_ && live_[slot] != 0;
  }
  [[nodiscard]] ObjectId IdAtSlot(std::uint64_t slot) const {
    DGC_DCHECK(SlotLive(slot));
    return IdAt(slot);
  }
  [[nodiscard]] const Object& ObjectAtSlot(std::uint64_t slot) const {
    DGC_DCHECK(SlotLive(slot));
    return ObjectAt(slot);
  }
  [[nodiscard]] std::uint64_t MarkEpochAtSlot(std::uint64_t slot) const {
    DGC_DCHECK(slot < used_slots_);
    return mark_epoch_[slot];
  }

  /// Atomically claims a slot's clean stamp for `epoch`: the first caller
  /// wins and also stamps the mark epoch; every later (or concurrent) caller
  /// gets false. Relaxed ordering suffices — claims are independent, and the
  /// mark phase's join (a mutex/condition-variable barrier in the worker
  /// pool) publishes all stamps before any sequential reader looks at them.
  /// With one thread this degenerates to the plain check-and-set the
  /// sequential marker performs, so epoch semantics are unchanged.
  bool TryClaimCleanSlot(std::uint64_t slot, std::uint64_t epoch) {
    DGC_DCHECK(SlotLive(slot));
    std::atomic_ref<std::uint64_t> clean(clean_epoch_[slot]);
    std::uint64_t expected = clean.load(std::memory_order_relaxed);
    if (expected == epoch) return false;
    // The only concurrent writers store this same epoch, so one CAS decides:
    // failure means another worker just claimed it.
    if (!clean.compare_exchange_strong(expected, epoch,
                                       std::memory_order_relaxed)) {
      return false;
    }
    std::atomic_ref<std::uint64_t>(mark_epoch_[slot])
        .store(epoch, std::memory_order_relaxed);
    return true;
  }

  /// Stores `target` (or null) into a slot. Purely mechanical; reference-
  /// tracking bookkeeping is the caller's job. Dirties the written object and
  /// the slot's previous local target (severing an edge can change the old
  /// target's reachability; the new target is reachable through the now-dirty
  /// source, so tracing from dirty objects covers it).
  void SetSlot(ObjectId id, std::size_t slot, ObjectId target);

  [[nodiscard]] ObjectId GetSlot(ObjectId id, std::size_t slot) const;

  /// Reclaims an object's storage. The caller guarantees unreachability.
  /// The storage slot joins the free list; its epochs reset to zero and its
  /// generation advances, invalidating the id permanently.
  void Free(ObjectId id);

  /// Marks/queries membership in the persistent-root set. Roots must be
  /// local live objects.
  void AddPersistentRoot(ObjectId id);
  void RemovePersistentRoot(ObjectId id);
  [[nodiscard]] const std::vector<ObjectId>& persistent_roots() const {
    return persistent_roots_;
  }

  [[nodiscard]] std::size_t object_count() const { return live_count_; }
  [[nodiscard]] const HeapStats& stats() const { return stats_; }

  // --- Snapshot / restore (socket-transport site persistence) -----------

  /// Copies the durable state out (see HeapImage).
  [[nodiscard]] HeapImage CaptureImage() const;

  /// Rebuilds this heap from an image. Only valid on a heap that has never
  /// allocated — the restore path constructs a fresh Site and loads into it.
  /// Epochs come back zeroed and the restored contents are conservatively
  /// all-dirty (the snapshot carries no trustworthy dirty record).
  void RestoreImage(const HeapImage& image);

  // --- Mutation-driven dirty tracking (incremental local traces) --------

  /// Monotone counter bumped by every mutation that can change a local
  /// trace's outcome: Allocate, Free, SetSlot, root-set changes, and
  /// explicit MarkDirty calls. A collector that records this value at trace
  /// time and sees it unchanged later has proof the heap is quiescent.
  [[nodiscard]] std::uint64_t mutation_epoch() const {
    return mutation_epoch_;
  }

  /// Conservatively records `id` as touched (barrier hooks; no-op for ids
  /// that no longer exist). Bumps the mutation epoch.
  void MarkDirty(ObjectId id);

  /// Invalidates the tracking wholesale (crash-restart: the dirty sets are
  /// volatile, so the restarted collector must not trust them). Bumps the
  /// mutation epoch so any cached trace keyed on it is discarded.
  void InvalidateDirtyTracking();

  /// Objects dirtied since the last ClearDirty (live ones only; a freed
  /// object's dirt is subsumed by the mutation epoch).
  [[nodiscard]] std::size_t dirty_object_count() const {
    return dirty_count_;
  }
  /// Dirty objects in one slab — the per-slab dirty set's cardinality.
  [[nodiscard]] std::size_t SlabDirtyCount(std::size_t slab) const {
    return slab < slab_dirty_.size() ? slab_dirty_[slab] : 0;
  }

  /// Visits every dirty live object's id, in storage-slot order.
  template <typename Fn>
  void ForEachDirty(Fn&& fn) const {
    for (std::size_t word = 0; word < dirty_bits_.size(); ++word) {
      std::uint64_t bits = dirty_bits_[word];
      while (bits != 0) {
        const std::uint64_t slot =
            word * 64 + static_cast<std::uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (slot < used_slots_ && live_[slot] != 0) fn(IdAt(slot));
      }
    }
  }

  /// Consumes the dirty sets (called by the collector once a trace has
  /// observed them). The mutation epoch is NOT reset — it is monotone.
  void ClearDirty();

  /// Registers (or, with nullptr, clears) the single mutation listener. The
  /// listener must outlive the heap or be cleared first.
  void SetMutationListener(HeapMutationListener* listener) {
    listener_ = listener;
  }

  // --- Occupancy (instrumentation) --------------------------------------

  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  [[nodiscard]] std::size_t slot_capacity() const { return used_slots_; }
  [[nodiscard]] std::size_t free_slot_count() const {
    return free_slots_.size();
  }
  /// Live objects per storage slot ever used; 1.0 means no internal holes.
  [[nodiscard]] double occupancy() const {
    return used_slots_ == 0
               ? 1.0
               : static_cast<double>(live_count_) /
                     static_cast<double>(used_slots_);
  }

  /// Visits every (ObjectId, Object) pair in storage-slot order: slabs in
  /// creation order, slots within a slab in order. A recycled slot keeps its
  /// storage position, so sweep order (and downstream message batching) is
  /// deterministic across runs and standard libraries.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
      if (live_[slot] == 0) continue;
      fn(IdAt(slot), ObjectAt(slot));
    }
  }

  /// ForEach plus the epoch stamps — the sweep's view, one decode per slot.
  template <typename Fn>
  void ForEachWithEpochs(Fn&& fn) const {
    for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
      if (live_[slot] == 0) continue;
      fn(IdAt(slot), ObjectAt(slot), mark_epoch_[slot], clean_epoch_[slot]);
    }
  }

 private:
  // ObjectId.index = (generation << 32) | (slot + 1). The +1 bias keeps
  // index 0 unused (matching the historical numbering where ids start at 1)
  // and makes generation-0 ids read 1, 2, 3, … in allocation order.
  static constexpr std::uint64_t kGenShift = 32;
  static constexpr std::uint64_t kSlotMask = (1ULL << kGenShift) - 1;

  static constexpr std::uint64_t SlotOf(std::uint64_t index) {
    return (index & kSlotMask) - 1;
  }
  static constexpr std::uint32_t GenerationOf(std::uint64_t index) {
    return static_cast<std::uint32_t>(index >> kGenShift);
  }

  [[nodiscard]] ObjectId IdAt(std::uint64_t slot) const {
    return ObjectId{site_, (static_cast<std::uint64_t>(generation_[slot])
                            << kGenShift) |
                               (slot + 1)};
  }
  [[nodiscard]] Object& ObjectAt(std::uint64_t slot) {
    return (*slabs_[slot / kSlabSize])[slot % kSlabSize];
  }
  [[nodiscard]] const Object& ObjectAt(std::uint64_t slot) const {
    return (*slabs_[slot / kSlabSize])[slot % kSlabSize];
  }

  using Slab = std::array<Object, kSlabSize>;

  /// Sets the slot's dirty bit and maintains the per-slab / total counts.
  void MarkDirtySlot(std::uint64_t slot);

  SiteId site_;
  std::vector<std::unique_ptr<Slab>> slabs_;
  // Side arrays indexed by storage slot, contiguous across slabs.
  std::vector<std::uint64_t> mark_epoch_;
  std::vector<std::uint64_t> clean_epoch_;
  std::vector<std::uint32_t> generation_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_slots_;  // LIFO recycling
  std::uint64_t used_slots_ = 0;           // high-water mark of slots touched
  std::size_t live_count_ = 0;
  std::vector<ObjectId> persistent_roots_;
  HeapStats stats_;
  // Dirty tracking: one bit per storage slot (words grown with the side
  // arrays), per-slab cardinalities, and the monotone mutation epoch.
  std::vector<std::uint64_t> dirty_bits_;
  std::vector<std::uint32_t> slab_dirty_;
  std::size_t dirty_count_ = 0;
  std::uint64_t mutation_epoch_ = 0;
  HeapMutationListener* listener_ = nullptr;
};

}  // namespace dgc
