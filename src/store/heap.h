// Per-site object store.
//
// Objects are clustered within sites (Section 2): each site owns a heap of
// objects whose slots hold references to local or remote objects. Certain
// objects are persistent roots (entry points such as name servers). The heap
// knows nothing about garbage collection beyond an epoch-stamped mark bit
// that the local tracer uses to avoid a clearing pass.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace dgc {

struct Object {
  /// Reference slots; kInvalidObject means null.
  std::vector<ObjectId> slots;

  /// Epoch of the last local trace that marked this object reachable
  /// (0 = never). Owned by the local collector; stored here to avoid a side
  /// table on the hot marking path.
  std::uint64_t mark_epoch = 0;

  /// Epoch of the last local trace that marked this object *clean*, i.e.
  /// reached it from a persistent/application root or a clean inref. An
  /// object with mark_epoch == E but clean_epoch != E was reached only from
  /// suspected inrefs in trace E.
  std::uint64_t clean_epoch = 0;
};

struct HeapStats {
  std::uint64_t allocated = 0;
  std::uint64_t reclaimed = 0;
};

class Heap {
 public:
  explicit Heap(SiteId site) : site_(site) {}

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  [[nodiscard]] SiteId site() const { return site_; }

  /// Allocates an object with `slot_count` null reference slots.
  ObjectId Allocate(std::size_t slot_count);

  [[nodiscard]] bool Exists(ObjectId id) const {
    return id.site == site_ && objects_.contains(id.index);
  }

  [[nodiscard]] Object& Get(ObjectId id) {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    return objects_.find(id.index)->second;
  }
  [[nodiscard]] const Object& Get(ObjectId id) const {
    DGC_CHECK_MSG(Exists(id), "no object " << id << " on site " << site_);
    return objects_.find(id.index)->second;
  }

  /// Stores `target` (or null) into a slot. Purely mechanical; reference-
  /// tracking bookkeeping is the caller's job.
  void SetSlot(ObjectId id, std::size_t slot, ObjectId target);

  [[nodiscard]] ObjectId GetSlot(ObjectId id, std::size_t slot) const;

  /// Reclaims an object's storage. The caller guarantees unreachability.
  void Free(ObjectId id);

  /// Marks/queries membership in the persistent-root set. Roots must be
  /// local live objects.
  void AddPersistentRoot(ObjectId id);
  void RemovePersistentRoot(ObjectId id);
  [[nodiscard]] const std::vector<ObjectId>& persistent_roots() const {
    return persistent_roots_;
  }

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] const HeapStats& stats() const { return stats_; }

  /// Visits every (ObjectId, Object) pair. `fn` must not mutate the heap.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [index, object] : objects_) {
      fn(ObjectId{site_, index}, object);
    }
  }

 private:
  SiteId site_;
  // Ordered map: iteration order (and thus sweep order, update batching and
  // message order everywhere downstream) is deterministic across standard
  // library implementations, not just within one run.
  std::map<std::uint64_t, Object> objects_;
  std::vector<ObjectId> persistent_roots_;
  std::uint64_t next_index_ = 1;
  HeapStats stats_;
};

}  // namespace dgc
