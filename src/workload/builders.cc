#include "workload/builders.h"

#include <algorithm>

#include "common/check.h"

namespace dgc::workload {

CycleHandles BuildCycle(System& system, const CycleSpec& spec) {
  DGC_CHECK(spec.sites >= 1);
  DGC_CHECK(spec.objects_per_site >= 1);
  DGC_CHECK(spec.first_site + spec.sites <= system.site_count());
  CycleHandles handles;
  for (std::size_t s = 0; s < spec.sites; ++s) {
    const SiteId site = static_cast<SiteId>(spec.first_site + s);
    for (std::size_t i = 0; i < spec.objects_per_site; ++i) {
      // Two slots: slot 0 carries the ring edge, slot 1 is free for
      // experiments to hang extra structure off cycle members.
      handles.objects.push_back(system.NewObject(site, 2));
    }
  }
  for (std::size_t i = 0; i < handles.objects.size(); ++i) {
    const ObjectId next = handles.objects[(i + 1) % handles.objects.size()];
    system.Wire(handles.objects[i], 0, next);
  }
  return handles;
}

ObjectId TetherToRoot(System& system, ObjectId target, SiteId root_site) {
  const ObjectId tether = system.NewObject(root_site, 1);
  system.SetPersistentRoot(tether);
  system.Wire(tether, 0, target);
  return tether;
}

std::vector<ObjectId> AttachChain(System& system, ObjectId from,
                                  std::size_t slot, std::size_t length) {
  std::vector<ObjectId> chain;
  ObjectId previous = from;
  std::size_t previous_slot = slot;
  for (std::size_t i = 0; i < length; ++i) {
    const SiteId site =
        static_cast<SiteId>((from.site + 1 + i) % system.site_count());
    const ObjectId link = system.NewObject(site, 1);
    system.Wire(previous, previous_slot, link);
    chain.push_back(link);
    previous = link;
    previous_slot = 0;
  }
  return chain;
}

std::vector<ObjectId> BuildRandomGraph(System& system,
                                       const RandomGraphSpec& spec, Rng& rng) {
  DGC_CHECK(spec.sites <= system.site_count());
  std::vector<ObjectId> objects;
  objects.reserve(spec.sites * spec.objects_per_site);
  for (std::size_t s = 0; s < spec.sites; ++s) {
    for (std::size_t i = 0; i < spec.objects_per_site; ++i) {
      objects.push_back(system.NewObject(static_cast<SiteId>(s),
                                         spec.slots_per_object));
    }
  }
  for (const ObjectId source : objects) {
    for (std::size_t slot = 0; slot < spec.slots_per_object; ++slot) {
      if (!rng.NextBool(spec.wire_probability)) continue;
      ObjectId target;
      if (rng.NextBool(spec.remote_edge_fraction) && spec.sites > 1) {
        // Remote target: any object on a different site.
        for (;;) {
          target = objects[rng.NextBelow(objects.size())];
          if (target.site != source.site) break;
        }
      } else {
        // Local target: an object on the same site.
        const std::size_t base =
            static_cast<std::size_t>(source.site) * spec.objects_per_site;
        target = objects[base + rng.NextBelow(spec.objects_per_site)];
      }
      system.Wire(source, slot, target);
    }
  }
  return objects;
}

HypertextWeb BuildHypertextWeb(System& system, const HypertextSpec& spec,
                               Rng& rng) {
  DGC_CHECK(spec.sites <= system.site_count());
  DGC_CHECK(spec.documents >= 1);
  HypertextWeb web;

  // Each document: a head object whose sections chain locally; the head's
  // link slots point at other documents, usually on other sites.
  for (std::size_t d = 0; d < spec.documents; ++d) {
    const SiteId site = static_cast<SiteId>(d % spec.sites);
    const ObjectId head =
        system.NewObject(site, 1 + spec.links_per_document);
    ObjectId previous = head;
    std::size_t previous_slot = 0;
    for (std::size_t s = 0; s < spec.sections_per_document; ++s) {
      const ObjectId section = system.NewObject(site, 1);
      system.Wire(previous, previous_slot, section);
      previous = section;
      previous_slot = 0;
    }
    web.documents.push_back(head);
  }

  const std::size_t rooted = std::min(
      spec.documents,
      static_cast<std::size_t>(
          static_cast<double>(spec.documents) * spec.rooted_fraction));

  // Cross-links stay within the rooted and unrooted groups so that the
  // unrooted group is genuinely garbage (a live link into it would resurrect
  // it). Both groups get random links plus a guaranteed inter-site ring —
  // hypertext "often forms large, complex cycles" (Section 1).
  const auto link_within = [&](std::size_t begin, std::size_t end) {
    const std::size_t count = end - begin;
    if (count == 0) return;
    for (std::size_t d = begin; d < end; ++d) {
      for (std::size_t l = 0; l < spec.links_per_document; ++l) {
        const ObjectId target =
            web.documents[begin + rng.NextBelow(count)];
        system.Wire(web.documents[d], 1 + l, target);
      }
    }
    if (count >= 2) {
      for (std::size_t d = begin; d < end; ++d) {
        system.Wire(web.documents[d], 1,
                    web.documents[begin + (d - begin + 1) % count]);
      }
    }
  };
  link_within(0, rooted);
  link_within(rooted, spec.documents);
  web.index_root = system.NewObject(0, rooted);
  system.SetPersistentRoot(web.index_root);
  for (std::size_t i = 0; i < rooted; ++i) {
    system.Wire(web.index_root, i, web.documents[i]);
  }
  return web;
}

}  // namespace dgc::workload
