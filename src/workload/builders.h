// Workload generators: the object graphs the experiments run on.
//
// All builders use the System's god-mode wiring (tables kept consistent,
// barriers bypassed) and are meant for constructing the initial world;
// subsequent mutation in an experiment should go through mutator Sessions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/system.h"

namespace dgc::workload {

/// An inter-site ring: `spec.sites` sites, `objects_per_site` chained objects
/// on each, the last object of each site pointing to the first object of the
/// next site, closing into a cycle. The canonical distributed garbage cycle.
struct CycleSpec {
  std::size_t sites = 2;
  std::size_t objects_per_site = 1;
  SiteId first_site = 0;
};

struct CycleHandles {
  /// All cycle objects in ring order; front() is the entry object.
  std::vector<ObjectId> objects;
  [[nodiscard]] ObjectId head() const { return objects.front(); }
};

CycleHandles BuildCycle(System& system, const CycleSpec& spec);

/// Allocates a root object at `root_site` pointing at `target` and registers
/// it as a persistent root. Unwire slot 0 of the returned object to cut the
/// tether and turn `target`'s structure into garbage.
ObjectId TetherToRoot(System& system, ObjectId target, SiteId root_site);

/// A chain of objects hanging off `from` (slot `slot`), hopping sites
/// round-robin: models garbage that a dead cycle drags along.
std::vector<ObjectId> AttachChain(System& system, ObjectId from,
                                  std::size_t slot, std::size_t length);

/// Random graph: `objects_per_site` objects on each site, each slot wired
/// with probability `wire_probability`, choosing a remote target with
/// probability `remote_edge_fraction` (clustering: most references local).
struct RandomGraphSpec {
  std::size_t sites = 4;
  std::size_t objects_per_site = 64;
  std::size_t slots_per_object = 3;
  double wire_probability = 0.8;
  double remote_edge_fraction = 0.15;
};

std::vector<ObjectId> BuildRandomGraph(System& system,
                                       const RandomGraphSpec& spec, Rng& rng);

/// Hypertext-style web (the paper's motivating workload): documents spread
/// over sites, section-objects chained under each document, cross-document
/// links that "often form large, complex cycles". Returns document heads.
struct HypertextSpec {
  std::size_t sites = 4;
  std::size_t documents = 16;
  std::size_t sections_per_document = 4;
  std::size_t links_per_document = 3;
  /// Fraction of documents linked (transitively) from the site-0 index root.
  double rooted_fraction = 0.5;
};

struct HypertextWeb {
  std::vector<ObjectId> documents;
  ObjectId index_root;  // persistent root listing the rooted documents
};

HypertextWeb BuildHypertextWeb(System& system, const HypertextSpec& spec,
                               Rng& rng);

}  // namespace dgc::workload
