#include "workload/churn.h"

#include "common/check.h"

namespace dgc::workload {

ChurnDriver::ChurnDriver(System& system, Rng rng)
    : system_(system), rng_(rng) {
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    const ObjectId container = system_.NewObject(s, 8);
    system_.SetPersistentRoot(container);
    containers_.push_back(container);
    clients_.push_back(std::make_unique<TransactionClient>(
        system_, s, 1000 + static_cast<std::uint64_t>(s)));
  }
}

void ChurnDriver::Run(const ChurnSpec& spec) {
  DGC_CHECK(spec.container_slots >= 2 && spec.container_slots <= 8);
  const double total_weight = spec.publish_weight + spec.unlink_weight +
                              spec.crosslink_weight + spec.weave_pair_weight;
  DGC_CHECK(total_weight > 0);
  for (std::size_t step = 0; step < spec.steps; ++step) {
    const double roll = rng_.NextDouble() * total_weight;
    if (roll < spec.publish_weight) {
      Publish(spec);
    } else if (roll < spec.publish_weight + spec.unlink_weight) {
      Unlink(spec);
    } else if (roll <
               spec.publish_weight + spec.unlink_weight +
                   spec.crosslink_weight) {
      CrossLink(spec);
    } else {
      WeavePair(spec);
    }
    if (spec.rounds_every > 0 && step % spec.rounds_every ==
                                     spec.rounds_every - 1) {
      system_.RunRoundStaggered(spec.round_stagger);
      ++stats_.rounds;
    }
    if (spec.check_safety_each_step) {
      const std::string violation = system_.CheckSafety();
      DGC_CHECK_MSG(violation.empty(),
                    "churn step " << step << ": " << violation);
    }
  }
}

void ChurnDriver::Publish(const ChurnSpec& spec) {
  const ObjectId container = RandomContainer();
  TransactionClient& client = ClientAt(container.site);
  client.Fetch(container);
  const ObjectId fresh = client.Create(2);
  client.Write(fresh, 0, fresh);  // self loop: local-cycle fodder
  client.Write(container, rng_.NextBelow(spec.container_slots), fresh);
  client.Commit();
  client.EndTransaction();
  ++stats_.publishes;
}

void ChurnDriver::Unlink(const ChurnSpec& spec) {
  const ObjectId container = RandomContainer();
  TransactionClient& client = ClientAt(container.site);
  client.Fetch(container);
  client.Write(container, rng_.NextBelow(spec.container_slots),
               kInvalidObject);
  client.Commit();
  client.EndTransaction();
  ++stats_.unlinks;
}

void ChurnDriver::CrossLink(const ChurnSpec& spec) {
  // Copy a reference from one container to another (possibly across sites):
  // the §6.1.2 arrival cases and insert barrier run inside Commit.
  const ObjectId from = RandomContainer();
  const ObjectId to = RandomContainer();
  TransactionClient& client = ClientAt(from.site);
  client.Fetch(from);
  const ObjectId value =
      client.ReadCached(from, rng_.NextBelow(spec.container_slots));
  if (value.valid()) {
    client.Fetch(to);
    client.Write(to, rng_.NextBelow(spec.container_slots), value);
    client.Commit();
  }
  client.EndTransaction();
  ++stats_.crosslinks;
}

void ChurnDriver::WeavePair(const ChurnSpec& spec) {
  // Two fresh objects on different sites referencing each other, published
  // into one container then immediately unlinked half the time — prime
  // inter-site-cycle food for the back tracer.
  const SiteId a = static_cast<SiteId>(rng_.NextBelow(system_.site_count()));
  const SiteId b =
      static_cast<SiteId>((a + 1 + rng_.NextBelow(system_.site_count() - 1)) %
                          system_.site_count());
  TransactionClient& client = ClientAt(a);
  const ObjectId container = containers_[a];
  client.Fetch(container);
  const ObjectId mine = client.Create(1);
  // The peer object is created through the peer container so the reference
  // flows through the real machinery.
  TransactionClient& peer = ClientAt(b);
  peer.Fetch(containers_[b]);
  const ObjectId theirs = peer.Create(1);
  peer.Write(containers_[b], spec.container_slots - 1, theirs);
  peer.Commit();
  peer.EndTransaction();

  client.Fetch(containers_[b]);
  const ObjectId got = client.ReadCached(containers_[b],
                                         spec.container_slots - 1);
  if (got.valid()) {
    client.Write(mine, 0, got);
    client.Fetch(got);
    client.Write(got, 0, mine);
    client.Write(container, rng_.NextBelow(spec.container_slots), mine);
    client.Commit();
  }
  client.EndTransaction();
  // Unpublish both ends half the time: the woven pair becomes a two-site
  // garbage cycle.
  if (rng_.NextBool(0.5)) {
    TransactionClient& cleaner = ClientAt(b);
    cleaner.Fetch(containers_[b]);
    cleaner.Write(containers_[b], spec.container_slots - 1, kInvalidObject);
    cleaner.Commit();
    cleaner.EndTransaction();
  }
  ++stats_.weaves;
}

void ChurnDriver::Quiesce(std::size_t max_rounds) {
  for (auto& client : clients_) client->EndTransaction();
  for (std::size_t round = 0; round < max_rounds; ++round) {
    system_.RunRound();
    if (system_.CheckCompleteness().empty()) return;
  }
  DGC_CHECK_MSG(false, "churn world did not quiesce: "
                           << system_.CheckCompleteness());
}

}  // namespace dgc::workload
