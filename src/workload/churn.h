// Randomized mutator churn: a reusable driver that exercises the collector
// under continuous application activity, through either the RPC sessions or
// the transactional clients. Used by property tests, benches and examples.
//
// The driver maintains one rooted container per site and performs weighted
// random operations: publishing fresh (possibly self-cyclic) objects,
// cross-linking between containers, unlinking slots, and weaving cross-site
// object pairs. Collection rounds interleave on a configurable cadence, and
// the safety oracle can be consulted after every step.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/system.h"
#include "mutator/transaction.h"

namespace dgc::workload {

struct ChurnSpec {
  std::size_t steps = 100;
  std::size_t container_slots = 4;
  /// Interleave a staggered round of local traces every this-many steps.
  std::size_t rounds_every = 5;
  SimTime round_stagger = 7;
  /// Operation weights (normalized internally).
  double publish_weight = 3;
  double unlink_weight = 2;
  double crosslink_weight = 2;
  double weave_pair_weight = 1;
  /// Consult the safety oracle after every step (throws on violation).
  bool check_safety_each_step = true;
};

struct ChurnStats {
  std::uint64_t publishes = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t crosslinks = 0;
  std::uint64_t weaves = 0;
  std::uint64_t rounds = 0;
};

/// Transaction-based churn driver: every mutation is a fetch/write/commit
/// against the rooted containers, so all barrier machinery runs constantly.
class ChurnDriver {
 public:
  ChurnDriver(System& system, Rng rng);

  /// Runs `spec.steps` random operations. May be called repeatedly.
  void Run(const ChurnSpec& spec);

  /// Releases all client holds and runs rounds until the world is garbage-
  /// free; throws InvariantViolation if completeness is not reached within
  /// `max_rounds`.
  void Quiesce(std::size_t max_rounds = 60);

  [[nodiscard]] const ChurnStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<ObjectId>& containers() const {
    return containers_;
  }

 private:
  void Publish(const ChurnSpec& spec);
  void Unlink(const ChurnSpec& spec);
  void CrossLink(const ChurnSpec& spec);
  void WeavePair(const ChurnSpec& spec);

  TransactionClient& ClientAt(SiteId site) { return *clients_[site]; }
  ObjectId RandomContainer() {
    return containers_[rng_.NextBelow(containers_.size())];
  }

  System& system_;
  Rng rng_;
  std::vector<ObjectId> containers_;
  std::vector<std::unique_ptr<TransactionClient>> clients_;
  ChurnStats stats_;
};

}  // namespace dgc::workload
