#include "workload/figures.h"

#include "common/check.h"

namespace dgc::workload {

namespace {
constexpr SiteId kP = 0;
constexpr SiteId kQ = 1;
constexpr SiteId kR = 2;
constexpr SiteId kS = 3;
}  // namespace

Figure1World BuildFigure1(System& system) {
  DGC_CHECK(system.site_count() >= 3);
  Figure1World w;
  w.a = system.NewObject(kP, 2);
  w.e = system.NewObject(kP, 0);
  w.b = system.NewObject(kQ, 1);
  w.d = system.NewObject(kQ, 1);
  w.f = system.NewObject(kQ, 1);
  w.c = system.NewObject(kR, 0);
  w.g = system.NewObject(kR, 1);
  system.SetPersistentRoot(w.a);
  system.Wire(w.a, 0, w.b);
  system.Wire(w.a, 1, w.c);
  system.Wire(w.b, 0, w.c);
  system.Wire(w.d, 0, w.e);
  system.Wire(w.f, 0, w.g);
  system.Wire(w.g, 0, w.f);
  return w;
}

Figure2World BuildFigure2(System& system) {
  DGC_CHECK(system.site_count() >= 3);
  Figure2World w;
  w.c = system.NewObject(kP, 1);
  w.a = system.NewObject(kQ, 1);
  w.b = system.NewObject(kQ, 2);
  w.d = system.NewObject(kR, 1);
  system.Wire(w.a, 0, w.c);
  system.Wire(w.b, 0, w.c);
  system.Wire(w.b, 1, w.d);
  system.Wire(w.c, 0, w.a);
  system.Wire(w.d, 0, w.b);
  return w;
}

Figure3World BuildFigure3(System& system) {
  DGC_CHECK(system.site_count() >= 5);
  constexpr SiteId kD = 4;
  Figure3World w;
  w.root = system.NewObject(kS, 1);
  w.s1 = system.NewObject(kS, 1);
  w.a = system.NewObject(kP, 2);
  w.b = system.NewObject(kQ, 1);
  w.c = system.NewObject(kR, 1);
  w.d = system.NewObject(kD, 0);
  system.SetPersistentRoot(w.root);
  system.Wire(w.root, 0, w.s1);
  system.Wire(w.s1, 0, w.a);  // the "long path from root" into a
  system.Wire(w.a, 0, w.b);
  system.Wire(w.a, 1, w.c);
  system.Wire(w.b, 0, w.c);
  system.Wire(w.c, 0, w.d);
  return w;
}

Figure4World BuildFigure4(System& system, bool close_scc) {
  DGC_CHECK(system.site_count() >= 3);
  constexpr SiteId kQ4 = 0, kP4 = 1, kR4 = 2;
  Figure4World w;
  w.a = system.NewObject(kQ4, 1);
  w.b = system.NewObject(kQ4, 1);
  w.z = system.NewObject(kQ4, 2);
  w.x = system.NewObject(kQ4, 2);
  w.y = system.NewObject(kQ4, 2);
  w.c = system.NewObject(kP4, 0);
  w.d = system.NewObject(kR4, 0);
  system.Wire(w.a, 0, w.z);
  system.Wire(w.b, 0, w.z);
  system.Wire(w.z, 0, w.x);
  system.Wire(w.z, 1, w.c);  // remote: outref c
  system.Wire(w.x, 0, w.y);
  system.Wire(w.y, 0, w.d);  // remote: outref d
  if (close_scc) system.Wire(w.y, 1, w.z);  // back edge: {z,x,y} is an SCC
  // Make a and b inrefs (sourced from P and R respectively) so the suspect
  // trace starts from them.
  const ObjectId holder_p = system.NewObject(kP4, 1);
  const ObjectId holder_r = system.NewObject(kR4, 1);
  system.Wire(holder_p, 0, w.a);
  system.Wire(holder_r, 0, w.b);
  return w;
}

Figure5World BuildFigure5(System& system, bool with_second_source) {
  DGC_CHECK(system.site_count() >= 4);
  Figure5World w;
  w.a = system.NewObject(kP, 1);
  w.g = system.NewObject(kP, 0);
  w.b = system.NewObject(kQ, 2);
  w.y = system.NewObject(kQ, 1);
  w.z = system.NewObject(kQ, 1);
  w.x = system.NewObject(kQ, 1);
  w.f = system.NewObject(kQ, 1);
  w.c = system.NewObject(kR, 1);
  w.e = system.NewObject(kR, 2);
  w.d = system.NewObject(kS, 1);
  system.SetPersistentRoot(w.a);
  system.Wire(w.a, 0, w.b);  // P -> Q
  system.Wire(w.b, 0, w.c);  // Q -> R
  system.Wire(w.b, 1, w.y);  // local at Q
  system.Wire(w.c, 0, w.d);  // R -> S
  system.Wire(w.d, 0, w.e);  // S -> R
  system.Wire(w.e, 0, w.f);  // R -> Q
  system.Wire(w.f, 0, w.x);  // local at Q
  system.Wire(w.x, 0, w.z);  // local at Q
  system.Wire(w.z, 0, w.g);  // Q -> P
  if (with_second_source) {
    system.Wire(w.e, 1, w.g);  // Figure 6: R -> P, second source of inref g
  }
  return w;
}

}  // namespace dgc::workload
