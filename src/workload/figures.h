// Exact reconstructions of the paper's worked figures, used by the scenario
// tests and figure benches. Object names follow the paper's lettering.
#pragma once

#include "common/ids.h"
#include "core/system.h"

namespace dgc::workload {

/// Figure 1: recording inter-site references. Sites P=0, Q=1, R=2.
/// Edges: a->b, a->c, b->c, d->e, f->g, g->f.  `a` is the persistent root;
/// d is local garbage at Q; {f,g} is the inter-site garbage cycle local
/// tracing never collects.
struct Figure1World {
  ObjectId a, b, c, d, e, f, g;
};
Figure1World BuildFigure1(System& system);

/// Figure 2: insets of suspected outrefs. Sites P=0, Q=1, R=2.
/// Edges: a->c, b->c, b->d, c->a, d->b (a,b at Q; c at P; d at R).
/// Inset of outref c at Q is {a, b}; a back trace must start from an outref
/// (starting from inref a would miss the path from b).
struct Figure2World {
  ObjectId a, b, c, d;
};
Figure2World BuildFigure2(System& system);

/// Figure 3: a branching back trace. Sites P=0, Q=1, R=2, S=3 plus the
/// suspect's own site D=4. Edges: a->b, a->c, b->c, c->d, and a long
/// root path root -> s1 -> a keeping `a` (hence everything) live.
struct Figure3World {
  ObjectId root, s1, a, b, c, d;
};
Figure3World BuildFigure3(System& system);

/// Figure 4: one site where plain tracing fails to compute reachability.
/// Site Q=0 with remote neighbours P=1, R=2. Local edges a->z, b->z, z->x,
/// x->y(, y->z closing a strongly connected component), z holds remote c,
/// y holds remote d. Inrefs a (from P), b (from R).
struct Figure4World {
  ObjectId a, b, x, y, z;  // at Q
  ObjectId c;              // at P, target of outref c
  ObjectId d;              // at R, target of outref d
};
Figure4World BuildFigure4(System& system, bool close_scc);

/// Figures 5 and 6: the concurrency problem cases. Sites P=0, Q=1, R=2,
/// S=3. Old path: a->b (P->Q), b->c (Q->R), c->d (R->S), d->e (S->R),
/// e->f (R->Q), f->x, x->z (local at Q), z->g (Q->P); plus b->y local at Q.
/// The scripted mutation creates y->z then deletes d->e.
/// With with_second_source (Figure 6), e also holds g (R->P), so a back
/// trace from outref g at Q forks to inref g's sources {Q, R}... g's sources
/// become {Q, R} and the trace branches.
struct Figure5World {
  ObjectId a, g;           // at P (a is the persistent root)
  ObjectId b, y, z, x, f;  // at Q
  ObjectId c, e;           // at R
  ObjectId d;              // at S
};
Figure5World BuildFigure5(System& system, bool with_second_source);

}  // namespace dgc::workload
