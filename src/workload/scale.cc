#include "workload/scale.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace dgc::workload {

namespace {

/// Rank-biased draw in [0, n): floor(n * u^bias). bias 1 is uniform; larger
/// values concentrate mass on low ranks (hubs).
std::uint32_t BiasedRank(Rng& rng, std::size_t n, double bias) {
  DGC_CHECK(n > 0);
  const double u = rng.NextDouble();
  const auto rank =
      static_cast<std::uint32_t>(std::pow(u, bias) * static_cast<double>(n));
  return std::min<std::uint32_t>(rank, static_cast<std::uint32_t>(n - 1));
}

}  // namespace

// --- Power-law topology ----------------------------------------------------

ScaleTopologyPlan BuildScaleTopology(const ScaleTopologySpec& spec) {
  DGC_CHECK(spec.sites > 0);
  DGC_CHECK(spec.objects_per_site > 0);
  DGC_CHECK(spec.hub_bias >= 1.0);
  DGC_CHECK(spec.rooted_fraction >= 0.0 && spec.rooted_fraction <= 1.0);

  ScaleTopologyPlan plan;
  plan.spec = spec;
  Rng rng(spec.seed);

  const auto sites = static_cast<std::uint32_t>(spec.sites);
  const auto per_site = static_cast<std::uint32_t>(spec.objects_per_site);

  for (std::uint32_t from_site = 0; from_site < sites; ++from_site) {
    for (std::uint32_t ordinal = 0; ordinal < per_site; ++ordinal) {
      for (std::uint32_t slot = 0; slot < spec.slots_per_object; ++slot) {
        if (!rng.NextBool(spec.wire_probability)) continue;
        std::uint32_t to_site = from_site;
        if (sites > 1 && rng.NextBool(spec.remote_edge_fraction)) {
          to_site = BiasedRank(rng, sites, spec.hub_bias);
          if (to_site == from_site) to_site = (to_site + 1) % sites;
        }
        std::uint32_t to_ordinal = BiasedRank(rng, per_site, spec.hub_bias);
        if (to_site == from_site && to_ordinal == ordinal) {
          to_ordinal = (to_ordinal + 1) % per_site;  // no self-edges
        }
        plan.edges.push_back(
            PlannedEdge{from_site, to_site, ordinal, to_ordinal, slot});
      }
    }
  }

  const auto rooted = static_cast<std::uint32_t>(
      spec.rooted_fraction * static_cast<double>(per_site));
  for (std::uint32_t site = 0; site < sites; ++site) {
    for (std::uint32_t ordinal = 0; ordinal < rooted; ++ordinal) {
      plan.roots.push_back(PlannedRoot{site, ordinal});
    }
  }
  return plan;
}

std::vector<std::vector<ObjectId>> InstantiateScaleTopology(
    System& system, const ScaleTopologyPlan& plan) {
  const ScaleTopologySpec& spec = plan.spec;
  DGC_CHECK_MSG(system.site_count() >= spec.sites,
                "system has " << system.site_count() << " sites, plan needs "
                              << spec.sites);
  std::vector<std::vector<ObjectId>> objects(spec.sites);
  for (std::uint32_t site = 0; site < spec.sites; ++site) {
    objects[site].reserve(spec.objects_per_site);
    for (std::uint32_t i = 0; i < spec.objects_per_site; ++i) {
      objects[site].push_back(system.NewObject(site, spec.slots_per_object));
    }
  }
  for (const PlannedRoot& root : plan.roots) {
    system.SetPersistentRoot(objects[root.site][root.ordinal]);
  }
  for (const PlannedEdge& edge : plan.edges) {
    system.Wire(objects[edge.from_site][edge.from_ordinal], edge.slot,
                objects[edge.to_site][edge.to_ordinal]);
  }
  return objects;
}

// --- Open-loop request/reply driver ----------------------------------------

ScaleDriver::ScaleDriver(System& system, const ScaleDriverSpec& spec)
    : system_(system),
      spec_(spec),
      rng_(spec.seed),
      free_tethers_(system.site_count()),
      ttc_(spec.reservoir_capacity, spec.seed ^ 0x7e5e4c01ULL) {
  DGC_CHECK(spec_.mean_interarrival > 0);
  DGC_CHECK(spec_.mean_lifetime > 0);
  DGC_CHECK(spec_.min_cycle_span >= 2);
  DGC_CHECK(spec_.max_cycle_span >= spec_.min_cycle_span);
  DGC_CHECK_MSG(system_.site_count() >= spec_.max_cycle_span,
                "cycle span exceeds site count");
  DGC_CHECK(spec_.hub_bias >= 1.0);
}

SimTime ScaleDriver::NextExponential(SimTime mean) {
  const double u = rng_.NextDouble();
  const double draw = -std::log(1.0 - u) * static_cast<double>(mean);
  return std::max<SimTime>(1, static_cast<SimTime>(draw));
}

SiteId ScaleDriver::BiasedSite() {
  return BiasedRank(rng_, system_.site_count(), spec_.hub_bias);
}

void ScaleDriver::Run() {
  const SimTime start = system_.now();
  const SimTime end = start + spec_.duration;
  SimTime next_spawn = start + NextExponential(spec_.mean_interarrival);
  SimTime next_round = start + spec_.round_period;
  for (;;) {
    SimTime next = std::min(next_spawn, next_round);
    if (!live_.empty()) next = std::min(next, live_.back().sever_at);
    if (next > end) break;
    // Open loop: advance the world exactly to the next driver event —
    // in-flight messages, traces and back traces run as their times come
    // up, but the driver never waits for them.
    system_.RunUntilTime(next);
    while (!live_.empty() && live_.back().sever_at <= next) {
      Cohort cohort = std::move(live_.back());
      live_.pop_back();
      Sever(std::move(cohort));
    }
    if (next_spawn <= next) {
      Spawn();
      next_spawn = next + NextExponential(spec_.mean_interarrival);
    }
    if (next_round <= next) {
      Harvest();
      StartStaggeredRound();
      next_round += spec_.round_period;
    }
  }
  system_.RunUntilTime(end);
  Harvest();
  stats_.drove_for += spec_.duration;
}

void ScaleDriver::Spawn() {
  ++stats_.mutations;
  ++stats_.cohorts_spawned;
  const std::size_t span =
      spec_.min_cycle_span +
      rng_.NextBelow(spec_.max_cycle_span - spec_.min_cycle_span + 1);
  // Distinct hop sites, rank-biased (hub sites serve most requests).
  std::vector<SiteId> hops;
  hops.reserve(span);
  hops.push_back(BiasedSite());
  while (hops.size() < span) {
    SiteId s = BiasedSite();
    while (std::find(hops.begin(), hops.end(), s) != hops.end()) {
      s = (s + 1) % static_cast<SiteId>(system_.site_count());
    }
    hops.push_back(s);
  }

  Cohort cohort;
  cohort.objects.reserve(span);
  for (const SiteId s : hops) cohort.objects.push_back(system_.NewObject(s, 2));
  // Request ring (slot 0 forward) plus reply edges (slot 1 back): severing
  // the tether leaves a strongly connected distributed garbage cycle.
  for (std::size_t i = 0; i < span; ++i) {
    system_.Wire(cohort.objects[i], 0, cohort.objects[(i + 1) % span]);
    system_.Wire(cohort.objects[i], 1,
                 cohort.objects[(i + span - 1) % span]);
  }

  const SiteId client = hops.front();
  if (!free_tethers_[client].empty()) {
    cohort.tether = free_tethers_[client].back();
    free_tethers_[client].pop_back();
    ++stats_.tethers_reused;
  } else {
    cohort.tether = system_.NewObject(client, 1);
    system_.SetPersistentRoot(cohort.tether);
  }
  system_.Wire(cohort.tether, 0, cohort.objects.front());

  cohort.sever_at = system_.now() + NextExponential(spec_.mean_lifetime);
  // Keep live_ sorted by sever_at descending so the soonest sever is at the
  // back (pop without shifting).
  const auto pos = std::upper_bound(
      live_.begin(), live_.end(), cohort.sever_at,
      [](SimTime t, const Cohort& c) { return t > c.sever_at; });
  live_.insert(pos, std::move(cohort));
}

void ScaleDriver::Sever(Cohort cohort) {
  ++stats_.mutations;
  ++stats_.cohorts_severed;
  system_.Unwire(cohort.tether, 0);
  // The tether object stays rooted and is recycled for a later cohort at the
  // same site, so long runs do not grow the root set without bound.
  free_tethers_[cohort.tether.site].push_back(cohort.tether);
  cohort.severed_at = system_.now();
  pending_.push_back(std::move(cohort));
}

void ScaleDriver::Harvest() {
  const SimTime now = system_.now();
  for (std::size_t i = 0; i < pending_.size();) {
    const Cohort& cohort = pending_[i];
    const bool reclaimed =
        std::all_of(cohort.objects.begin(), cohort.objects.end(),
                    [this](ObjectId obj) { return !system_.ObjectExists(obj); });
    if (!reclaimed) {
      ++i;
      continue;
    }
    ttc_.Record(now - cohort.severed_at);
    ++stats_.cohorts_collected;
    pending_[i] = std::move(pending_.back());
    pending_.pop_back();
  }
}

void ScaleDriver::StartStaggeredRound() {
  ++stats_.rounds_started;
  // Each site's trace is scheduled on its own scheduler so the threaded
  // transport runs it on the site's thread; under the sim transport every
  // SchedulerFor is the shared scheduler and this is the historical
  // After(offset) schedule verbatim. With round_stagger 0 all traces share
  // one instant — one parallel phase under the threaded backend.
  const SimTime base = system_.now();
  SimTime offset = 0;
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    Site* site = &system_.site(s);
    system_.SchedulerFor(s).At(base + offset, [site] {
      if (!site->trace_in_flight()) site->StartLocalTrace();
    });
    offset += spec_.round_stagger;
  }
}

bool ScaleDriver::Quiesce(std::size_t max_rounds) {
  system_.SettleNetwork();
  for (std::size_t i = 0; i < max_rounds; ++i) {
    Harvest();
    if (pending_.empty()) return true;
    system_.RunRound();
  }
  Harvest();
  return pending_.empty();
}

}  // namespace dgc::workload
