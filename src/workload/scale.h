// Scale engine: hundred-site / million-object worlds and an open-loop
// mutation driver (ROADMAP item "the million-object, hundred-site workload
// engine").
//
// Two pieces:
//
//   * a power-law topology generator. Social-graph-shaped reference
//     structure: target popularity is rank-biased (a few hub objects and hub
//     sites attract most references), local edges dominate with a
//     configurable remote fraction. The plan is pure data keyed by
//     (site, ordinal) — building it touches no System, so determinism is
//     testable by comparing plans, and the same plan can instantiate many
//     systems;
//
//   * an open-loop driver of actor-style request/reply traffic. Each arrival
//     spawns a ring of request/reply objects spanning several sites,
//     tethered to a root at the client site; a later arrival severs the
//     tether, turning the ring into a distributed garbage cycle. Arrivals
//     follow the configured rate regardless of collection progress (open
//     loop — the simulation clock is only ever advanced to the next event,
//     never drained), collection rounds fire on their own cadence, and the
//     per-cycle time from severing to full reclamation feeds a bounded
//     reservoir whose p50/p99 are the scale numbers the benches report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/latency_reservoir.h"
#include "core/system.h"

namespace dgc::workload {

// --- Power-law topology ----------------------------------------------------

struct ScaleTopologySpec {
  std::size_t sites = 100;
  std::size_t objects_per_site = 10'000;  // 10^6 objects at 100 sites
  std::size_t slots_per_object = 3;
  /// Probability each slot is wired at all.
  double wire_probability = 0.9;
  /// Fraction of wired slots that cross sites.
  double remote_edge_fraction = 0.2;
  /// Rank bias ("hubbiness"), >= 1. Targets are drawn as
  /// ordinal = floor(N * u^hub_bias): bias 1 is uniform; larger values
  /// concentrate references on low-ordinal hub objects (and hub sites), a
  /// power-law in-degree distribution. The share of references landing on
  /// the top decile of ranks is 0.1^(1/hub_bias).
  double hub_bias = 2.0;
  /// Fraction of each site's hub objects (the first
  /// rooted_fraction * objects_per_site ordinals) tethered to persistent
  /// roots; everything else is reachable only through the reference graph.
  double rooted_fraction = 0.05;
  std::uint64_t seed = 1;
};

/// One planned reference: slot `slot` of object (from_site, from_ordinal)
/// points at object (to_site, to_ordinal).
struct PlannedEdge {
  std::uint32_t from_site = 0;
  std::uint32_t to_site = 0;
  std::uint32_t from_ordinal = 0;
  std::uint32_t to_ordinal = 0;
  std::uint32_t slot = 0;

  friend bool operator==(const PlannedEdge&, const PlannedEdge&) = default;
};

/// A planned persistent root tethering object (site, ordinal).
struct PlannedRoot {
  std::uint32_t site = 0;
  std::uint32_t ordinal = 0;

  friend bool operator==(const PlannedRoot&, const PlannedRoot&) = default;
};

struct ScaleTopologyPlan {
  ScaleTopologySpec spec;
  std::vector<PlannedEdge> edges;
  std::vector<PlannedRoot> roots;
};

/// Pure and deterministic: the same spec (seed included) yields an identical
/// plan; no System is touched.
[[nodiscard]] ScaleTopologyPlan BuildScaleTopology(
    const ScaleTopologySpec& spec);

/// Allocates every planned object (god-mode wiring, like the other
/// builders), wires the planned edges and tethers the planned roots.
/// Returns the object ids indexed [site][ordinal].
std::vector<std::vector<ObjectId>> InstantiateScaleTopology(
    System& system, const ScaleTopologyPlan& plan);

// --- Open-loop request/reply driver ----------------------------------------

struct ScaleDriverSpec {
  /// Simulated time to drive (from the current clock).
  SimTime duration = 50'000;
  /// Mean simulated ticks between mutation arrivals (exponential
  /// interarrival; lower = higher load). The arrival process never waits for
  /// the collector: this is the open-loop control.
  SimTime mean_interarrival = 25;
  /// Mean lifetime of a request/reply cycle before its tether is severed.
  SimTime mean_lifetime = 400;
  /// Sites spanned by each request/reply ring (the garbage cycles are
  /// genuinely distributed for any value >= 2).
  std::size_t min_cycle_span = 2;
  std::size_t max_cycle_span = 4;
  /// Collection cadence: a staggered round of local traces starts every
  /// round_period ticks (site i offset by i * round_stagger), overlapping
  /// ongoing mutations — no drain between rounds.
  SimTime round_period = 500;
  SimTime round_stagger = 3;
  /// Same rank bias as the topology: client/hop sites are rank-biased.
  double hub_bias = 2.0;
  /// Reservoir capacity for the time-to-collect percentiles.
  std::size_t reservoir_capacity = 4096;
  std::uint64_t seed = 7;
};

struct ScaleDriverStats {
  std::uint64_t mutations = 0;  // spawn + sever events performed
  std::uint64_t cohorts_spawned = 0;
  std::uint64_t cohorts_severed = 0;
  std::uint64_t cohorts_collected = 0;
  std::uint64_t rounds_started = 0;
  std::uint64_t tethers_reused = 0;
  SimTime drove_for = 0;  // simulated time covered by Run()
};

class ScaleDriver {
 public:
  ScaleDriver(System& system, const ScaleDriverSpec& spec);

  /// Drives `spec.duration` of simulated time: arrivals, severs and
  /// collection rounds interleave through the scheduler; the clock is
  /// advanced event-to-event and never drained to idle. May be called
  /// repeatedly to extend the run.
  void Run();

  /// Closed-loop epilogue: stops the arrival process and runs full
  /// collection rounds (settling in between) until every severed cohort is
  /// reclaimed or `max_rounds` pass, harvesting time-to-collect for the
  /// stragglers. Returns true when everything severed was collected.
  bool Quiesce(std::size_t max_rounds = 60);

  [[nodiscard]] const ScaleDriverStats& stats() const { return stats_; }
  /// Severed-to-reclaimed latency sample (simulated ticks).
  [[nodiscard]] const LatencyReservoir& time_to_collect() const {
    return ttc_;
  }
  /// Cohorts severed but not yet observed fully reclaimed.
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }

 private:
  struct Cohort {
    std::vector<ObjectId> objects;
    ObjectId tether;        // rooted object whose slot 0 keeps the ring live
    SimTime sever_at = 0;   // scheduled sever time (live cohorts)
    SimTime severed_at = 0; // actual sever time (pending cohorts)
  };

  [[nodiscard]] SimTime NextExponential(SimTime mean);
  [[nodiscard]] SiteId BiasedSite();
  void Spawn();
  void Sever(Cohort cohort);
  /// Records time-to-collect for every pending cohort whose objects are all
  /// reclaimed.
  void Harvest();
  void StartStaggeredRound();

  System& system_;
  ScaleDriverSpec spec_;
  Rng rng_;
  std::vector<Cohort> live_;     // sorted by sever_at descending (next at back)
  std::vector<Cohort> pending_;  // severed, awaiting reclamation
  std::vector<std::vector<ObjectId>> free_tethers_;  // per site
  ScaleDriverStats stats_;
  LatencyReservoir ttc_;
};

}  // namespace dgc::workload
