#include "workload/scripted.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace dgc {
namespace {

// Every object gets two slots: slot 0 carries the ring edge (or tether),
// slot 1 stays free so future specs can densify without changing ids.
constexpr std::size_t kSlots = 2;

ScriptedRing BuildRing(GodWorld& world, Rng& rng, std::size_t span) {
  const std::size_t sites = world.site_count();
  const SiteId start = static_cast<SiteId>(rng.NextBelow(sites));
  span = std::max<std::size_t>(2, std::min(span, sites));

  ScriptedRing ring;
  ring.objects.reserve(span);
  for (std::size_t k = 0; k < span; ++k) {
    const SiteId site = static_cast<SiteId>((start + k) % sites);
    ring.objects.push_back(world.NewObject(site, kSlots));
  }
  for (std::size_t k = 0; k < span; ++k) {
    world.Wire(ring.objects[k], 0, ring.objects[(k + 1) % span]);
  }
  // The tether lives on the ring's first site and is a persistent root; as
  // long as its slot 0 points into the ring, every member is reachable.
  ring.tether = world.NewObject(start, kSlots);
  world.SetPersistentRoot(ring.tether);
  world.Wire(ring.tether, 0, ring.objects.front());
  return ring;
}

}  // namespace

ScriptedChurnResult RunScriptedChurn(GodWorld& world, std::uint64_t seed,
                                     const ScriptedChurnSpec& spec) {
  DGC_CHECK(world.site_count() >= 2);
  Rng rng(seed);
  ScriptedChurnResult result;

  for (std::size_t round = 0; round < spec.rounds; ++round) {
    for (std::size_t i = 0; i < spec.rings_per_round; ++i) {
      result.rings.push_back(BuildRing(world, rng, spec.ring_span));
    }
    for (std::size_t i = 0; i < spec.locals_per_round; ++i) {
      const SiteId site =
          static_cast<SiteId>(rng.NextBelow(world.site_count()));
      const ObjectId obj = world.NewObject(site, kSlots);
      world.Wire(obj, 0, obj);  // self-loop, unrooted: local garbage
      result.locals.push_back(obj);
    }
    // Cut tethers on rings created in EARLIER rounds (skip this round's:
    // their registration traffic may still be in flight, and cutting
    // settled rings is the interesting case for back tracing anyway).
    const std::size_t fresh = spec.rings_per_round;
    const std::size_t settled = result.rings.size() - fresh;
    for (std::size_t i = 0; i < settled; ++i) {
      ScriptedRing& ring = result.rings[i];
      if (!ring.cut && rng.NextBool(spec.cut_probability)) {
        world.Unwire(ring.tether, 0);
        ring.cut = true;
        ++result.cuts;
      }
    }
    world.RunRound();
  }

  // Cut every remaining tether so the final state is fully determined, then
  // drain: every cut ring must reach a garbage verdict and be reclaimed.
  for (ScriptedRing& ring : result.rings) {
    if (!ring.cut) {
      world.Unwire(ring.tether, 0);
      ring.cut = true;
      ++result.cuts;
    }
  }
  world.Settle();
  for (std::size_t i = 0; i < spec.drain_rounds; ++i) world.RunRound();
  return result;
}

}  // namespace dgc
