// Scripted seeded churn over an abstract god-mode world.
//
// The sim-vs-socket differential needs ONE op stream applied to two worlds
// that share nothing but the protocol: a System (sim or threaded transport)
// and a SocketWorld (real processes). GodWorld is that seam — the minimal
// god-mode surface both expose — and RunScriptedChurn is a deterministic
// generator over it: every RNG draw happens here, on the driver side, and
// object ids are whatever the worlds mint (identical by construction, since
// every heap allocates slab/slot/generation the same way for the same op
// stream). Run it twice with one seed and the two worlds must agree on
// every verdict and every reclaimed object.
//
// The workload shape is the paper's: cross-site rings (distributed cycles)
// tethered to a persistent root, tethers cut at random (the ring becomes
// distributed garbage only back tracing can collect), plus local self-loop
// garbage the local collector handles, all interleaved with collection
// rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "core/system.h"
#include "net/socket_world.h"

namespace dgc {

/// The god-mode surface the scripted workload drives.
class GodWorld {
 public:
  virtual ~GodWorld() = default;

  [[nodiscard]] virtual std::size_t site_count() const = 0;
  virtual ObjectId NewObject(SiteId site, std::size_t slots) = 0;
  virtual void SetPersistentRoot(ObjectId obj) = 0;
  virtual void Wire(ObjectId source, std::size_t slot, ObjectId target) = 0;
  virtual void Unwire(ObjectId source, std::size_t slot) = 0;
  virtual void RunRound() = 0;
  virtual void Settle() = 0;
};

class SystemGodWorld final : public GodWorld {
 public:
  explicit SystemGodWorld(System& system) : system_(system) {}
  [[nodiscard]] std::size_t site_count() const override {
    return system_.site_count();
  }
  ObjectId NewObject(SiteId site, std::size_t slots) override {
    return system_.NewObject(site, slots);
  }
  void SetPersistentRoot(ObjectId obj) override {
    system_.SetPersistentRoot(obj);
  }
  void Wire(ObjectId source, std::size_t slot, ObjectId target) override {
    system_.Wire(source, slot, target);
  }
  void Unwire(ObjectId source, std::size_t slot) override {
    system_.Unwire(source, slot);
  }
  void RunRound() override { system_.RunRound(); }
  void Settle() override { system_.SettleNetwork(); }

 private:
  System& system_;
};

class SocketGodWorld final : public GodWorld {
 public:
  explicit SocketGodWorld(SocketWorld& world) : world_(world) {}
  [[nodiscard]] std::size_t site_count() const override {
    return world_.site_count();
  }
  ObjectId NewObject(SiteId site, std::size_t slots) override {
    return world_.NewObject(site, slots);
  }
  void SetPersistentRoot(ObjectId obj) override {
    world_.SetPersistentRoot(obj);
  }
  void Wire(ObjectId source, std::size_t slot, ObjectId target) override {
    world_.Wire(source, slot, target);
  }
  void Unwire(ObjectId source, std::size_t slot) override {
    world_.Unwire(source, slot);
  }
  void RunRound() override { world_.RunRound(); }
  void Settle() override { world_.SettleNetwork(); }

 private:
  SocketWorld& world_;
};

struct ScriptedChurnSpec {
  std::size_t rounds = 6;
  /// Cross-site rings created per round.
  std::size_t rings_per_round = 2;
  /// Sites a ring spans (clamped to the world's site count).
  std::size_t ring_span = 3;
  /// Local self-loop garbage objects created per round.
  std::size_t locals_per_round = 2;
  /// Per-round chance each still-tethered ring's tether is cut, turning
  /// the ring into a distributed garbage cycle.
  double cut_probability = 0.5;
  /// Extra rounds after the churn to drain in-flight verdicts. Traces are
  /// one-at-a-time per site, so several cut rings need several rounds.
  std::size_t drain_rounds = 8;
};

struct ScriptedRing {
  std::vector<ObjectId> objects;  // wired in a cycle across sites
  ObjectId tether;                // persistent root holding the ring live
  bool cut = false;               // tether cleared: the ring is garbage
};

struct ScriptedChurnResult {
  std::vector<ScriptedRing> rings;
  std::vector<ObjectId> locals;  // self-loop local garbage
  std::size_t cuts = 0;
};

/// Applies the seeded op stream to `world`. Deterministic: same seed + spec
/// => same ops in the same order, whatever the world's transport.
ScriptedChurnResult RunScriptedChurn(GodWorld& world, std::uint64_t seed,
                                     const ScriptedChurnSpec& spec);

}  // namespace dgc
