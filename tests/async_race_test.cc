// Event-level race tests: several sessions fire *asynchronous* operations at
// staggered instants while local traces and back traces run, so RPCs,
// barriers, inserts, updates and trace steps genuinely interleave (the
// blocking-style helpers elsewhere serialize each session's ops; here whole
// op graphs overlap). Safety must hold at every settle point.
#include <gtest/gtest.h>

#include <deque>

#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 5;
  return config;
}

/// Drives one session through a script of async ops, starting the next op
/// only when the previous completes (sessions are sequential by contract)
/// but NOT settling the world in between — other sessions and collector
/// activity interleave freely.
class AsyncScript {
 public:
  AsyncScript(System& system, Session& session)
      : system_(system), session_(session) {}

  void PublishFresh(ObjectId container, std::size_t slot) {
    ops_.push_back([this, container, slot](const std::function<void()>& next) {
      if (!session_.Holds(container)) {
        // LoadRoot is cheap (local or pinned already) — run inline.
        session_.StartLoadRoot(container, [this, container, slot,
                                           next](ObjectId) {
          const ObjectId fresh = session_.Create(1);
          session_.StartWrite(container, slot, fresh, [this, fresh, next] {
            session_.Release(fresh);
            next();
          });
        });
        return;
      }
      const ObjectId fresh = session_.Create(1);
      session_.StartWrite(container, slot, fresh, [this, fresh, next] {
        session_.Release(fresh);
        next();
      });
    });
  }

  void Clear(ObjectId container, std::size_t slot) {
    ops_.push_back([this, container, slot](const std::function<void()>& next) {
      if (!session_.Holds(container)) {
        session_.StartLoadRoot(container,
                               [this, container, slot, next](ObjectId) {
                                 session_.StartWrite(container, slot,
                                                     kInvalidObject, next);
                               });
        return;
      }
      session_.StartWrite(container, slot, kInvalidObject, next);
    });
  }

  void CopyAcross(ObjectId from, std::size_t from_slot, ObjectId to,
                  std::size_t to_slot) {
    ops_.push_back([this, from, from_slot, to,
                    to_slot](const std::function<void()>& next) {
      const auto do_read = [this, from, from_slot, to, to_slot, next] {
        session_.StartRead(from, from_slot, [this, to, to_slot,
                                             next](ObjectId value) {
          if (!value.valid()) {
            next();
            return;
          }
          const auto do_write = [this, to, to_slot, value, next] {
            session_.StartWrite(to, to_slot, value, [this, value, next] {
              session_.Release(value);
              next();
            });
          };
          if (!session_.Holds(to)) {
            session_.StartLoadRoot(to,
                                   [do_write](ObjectId) { do_write(); });
          } else {
            do_write();
          }
        });
      };
      if (!session_.Holds(from)) {
        session_.StartLoadRoot(from, [do_read](ObjectId) { do_read(); });
      } else {
        do_read();
      }
    });
  }

  /// Schedules the script to begin at `start`; ops chain one after another.
  void Launch(SimTime start) {
    system_.scheduler().At(start, [this] { RunNext(); });
  }

  [[nodiscard]] bool finished() const { return ops_.empty() && !running_; }

 private:
  void RunNext() {
    if (ops_.empty()) {
      running_ = false;
      return;
    }
    running_ = true;
    auto op = std::move(ops_.front());
    ops_.pop_front();
    op([this] { RunNext(); });
  }

  System& system_;
  Session& session_;
  std::deque<std::function<void(const std::function<void()>&)>> ops_;
  bool running_ = false;
};

class AsyncRace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncRace, OverlappingSessionsWithCollectionStaySafe) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 2862933555777941757ULL);
  NetworkConfig net;
  net.latency = 15;
  net.latency_jitter = 10;
  System system(3, Config(), net, seed);

  std::vector<ObjectId> containers;
  for (SiteId s = 0; s < 3; ++s) {
    const ObjectId container = system.NewObject(s, 3);
    system.SetPersistentRoot(container);
    containers.push_back(container);
  }
  Session s0(system, 0, 1), s1(system, 1, 2), s2(system, 2, 3);
  AsyncScript scripts[3] = {{system, s0}, {system, s1}, {system, s2}};

  // Random scripts of ~10 ops per session.
  for (auto& script : scripts) {
    for (int i = 0; i < 10; ++i) {
      const ObjectId a = containers[rng.NextBelow(3)];
      const ObjectId b = containers[rng.NextBelow(3)];
      switch (rng.NextBelow(3)) {
        case 0:
          script.PublishFresh(a, rng.NextBelow(3));
          break;
        case 1:
          script.Clear(a, rng.NextBelow(3));
          break;
        case 2:
          script.CopyAcross(a, rng.NextBelow(3), b, rng.NextBelow(3));
          break;
      }
    }
  }
  // Launch all three staggered, plus collection rounds racing them.
  scripts[0].Launch(5);
  scripts[1].Launch(11);
  scripts[2].Launch(23);
  for (SimTime t = 40; t < 400; t += 60) {
    system.scheduler().At(t, [&system] {
      for (SiteId s = 0; s < 3; ++s) {
        if (!system.site(s).trace_in_flight()) {
          system.site(s).StartLocalTrace();
        }
      }
    });
  }
  system.SettleNetwork();
  EXPECT_TRUE(scripts[0].finished());
  EXPECT_TRUE(scripts[1].finished());
  EXPECT_TRUE(scripts[2].finished());
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();

  // Quiesce: drop holds, collect everything unreachable.
  s0.ReleaseAll();
  s1.ReleaseAll();
  s2.ReleaseAll();
  system.RunRounds(30);
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << "seed " << seed << ": " << system.CheckReferentialIntegrity();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncRace,
                         ::testing::Range<std::uint64_t>(1, 26));

class AsyncRaceDeferred : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncRaceDeferred, DeferredInsertsUnderAsyncRaces) {
  const std::uint64_t seed = GetParam();
  CollectorConfig config = Config();
  config.insert_mode = InsertMode::kDeferred;
  NetworkConfig net;
  net.latency = 15;
  System system(3, config, net, seed);
  std::vector<ObjectId> containers;
  for (SiteId s = 0; s < 3; ++s) {
    const ObjectId container = system.NewObject(s, 3);
    system.SetPersistentRoot(container);
    containers.push_back(container);
  }
  Session s0(system, 0, 1), s1(system, 1, 2);
  AsyncScript a(system, s0), b(system, s1);
  Rng rng(seed * 11400714819323198485ULL);
  for (int i = 0; i < 12; ++i) {
    a.PublishFresh(containers[rng.NextBelow(3)], rng.NextBelow(3));
    b.CopyAcross(containers[rng.NextBelow(3)], rng.NextBelow(3),
                 containers[rng.NextBelow(3)], rng.NextBelow(3));
    if (i % 3 == 0) {
      a.Clear(containers[rng.NextBelow(3)], rng.NextBelow(3));
    }
  }
  a.Launch(3);
  b.Launch(9);
  for (SimTime t = 30; t < 500; t += 70) {
    system.scheduler().At(t, [&system] {
      for (SiteId s = 0; s < 3; ++s) {
        if (!system.site(s).trace_in_flight()) {
          system.site(s).StartLocalTrace();
        }
      }
    });
  }
  system.SettleNetwork();
  EXPECT_TRUE(a.finished() && b.finished());
  s0.ReleaseAll();
  s1.ReleaseAll();
  system.RunRounds(30);
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncRaceDeferred,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace dgc
