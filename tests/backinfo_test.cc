// Unit + property tests for back-information computation (Section 5):
// canonical outset storage with memoized unions, the Tarjan-based bottom-up
// computer, and its equivalence to the independent-tracing oracle (§5.1) —
// including the Figure 4 graph where a naive trace gets it wrong.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "backinfo/outset_store.h"
#include "backinfo/site_back_info.h"
#include "backinfo/suspect_trace.h"
#include "common/rng.h"
#include "store/heap.h"

namespace dgc {
namespace {

// --- OutsetStore ------------------------------------------------------------

TEST(OutsetStoreTest, EmptySetIsIdZero) {
  OutsetStore store;
  EXPECT_EQ(OutsetStore::kEmpty, 0u);
  EXPECT_TRUE(store.Get(OutsetStore::kEmpty).empty());
}

TEST(OutsetStoreTest, SingletonInterned) {
  OutsetStore store;
  const ObjectId ref{2, 7};
  const auto a = store.Singleton(ref);
  const auto b = store.Singleton(ref);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.Get(a), std::vector<ObjectId>{ref});
}

TEST(OutsetStoreTest, UnionIsSetUnion) {
  OutsetStore store;
  const ObjectId r1{2, 1}, r2{2, 2}, r3{3, 1};
  auto s12 = store.Union(store.Singleton(r1), store.Singleton(r2));
  auto s123 = store.Add(s12, r3);
  EXPECT_EQ(store.Get(s123), (std::vector<ObjectId>{r1, r2, r3}));
  // Adding an existing member changes nothing.
  EXPECT_EQ(store.Add(s123, r2), s123);
}

TEST(OutsetStoreTest, UnionWithEmptyAndSelfIsTrivial) {
  OutsetStore store;
  const auto s = store.Singleton(ObjectId{2, 1});
  EXPECT_EQ(store.Union(s, OutsetStore::kEmpty), s);
  EXPECT_EQ(store.Union(OutsetStore::kEmpty, s), s);
  EXPECT_EQ(store.Union(s, s), s);
  EXPECT_EQ(store.stats().unions_trivial, 3u);
}

TEST(OutsetStoreTest, UnionsAreMemoized) {
  OutsetStore store;
  const auto a = store.Singleton(ObjectId{2, 1});
  const auto b = store.Singleton(ObjectId{2, 2});
  const auto first = store.Union(a, b);
  const auto computed_before = store.stats().unions_computed;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(store.Union(a, b), first);
    EXPECT_EQ(store.Union(b, a), first);  // order-normalized
  }
  EXPECT_EQ(store.stats().unions_computed, computed_before);
  EXPECT_GE(store.stats().unions_memo_hits, 20u);
}

TEST(OutsetStoreTest, EqualContentShareStorage) {
  OutsetStore store;
  const ObjectId r1{2, 1}, r2{2, 2}, r3{2, 3};
  // {r1,r2,r3} built two different ways must intern to the same id.
  const auto left =
      store.Union(store.Union(store.Singleton(r1), store.Singleton(r2)),
                  store.Singleton(r3));
  const auto right =
      store.Union(store.Singleton(r1),
                  store.Union(store.Singleton(r2), store.Singleton(r3)));
  EXPECT_EQ(left, right);
}

// --- Suspect tracing fixtures ------------------------------------------------

/// Env with explicit clean sets, for driving the tracers directly.
struct TestEnv {
  Heap* heap = nullptr;
  std::set<ObjectId> clean_objects;
  std::set<ObjectId> clean_outrefs;
  std::set<ObjectId> suspect_marked;

  bool ObjectIsCleanMarked(ObjectId id) const {
    return clean_objects.contains(id);
  }
  bool OutrefIsClean(ObjectId ref) const { return clean_outrefs.contains(ref); }
  void OnSuspectMarked(ObjectId id) { suspect_marked.insert(id); }
};

class SuspectTraceTest : public ::testing::Test {
 protected:
  Heap heap_{0};
  TestEnv env_;
  OutsetStore store_;

  ObjectId Obj(std::size_t slots) { return heap_.Allocate(slots); }
  void Edge(ObjectId from, std::size_t slot, ObjectId to) {
    heap_.SetSlot(from, slot, to);
  }

  std::vector<ObjectId> BottomUp(ObjectId root) {
    BottomUpOutsetComputer<TestEnv> computer(heap_, store_, env_);
    return store_.Get(computer.TraceFrom(root));
  }
};

TEST_F(SuspectTraceTest, ChainPropagatesOutset) {
  // a -> b -> c -> remote r
  const ObjectId a = Obj(1), b = Obj(1), c = Obj(1);
  const ObjectId r{1, 99};
  Edge(a, 0, b);
  Edge(b, 0, c);
  heap_.SetSlot(c, 0, r);
  EXPECT_EQ(BottomUp(a), std::vector<ObjectId>{r});
  EXPECT_EQ(env_.suspect_marked.size(), 3u);
}

TEST_F(SuspectTraceTest, CleanObjectsAreBlack) {
  const ObjectId a = Obj(1), b = Obj(1);
  const ObjectId r{1, 99};
  Edge(a, 0, b);
  heap_.SetSlot(b, 0, r);
  env_.clean_objects.insert(b);  // traced clean: never entered
  EXPECT_TRUE(BottomUp(a).empty());
  EXPECT_FALSE(env_.suspect_marked.contains(b));
}

TEST_F(SuspectTraceTest, CleanOutrefsExcluded) {
  const ObjectId a = Obj(2);
  const ObjectId r1{1, 1}, r2{1, 2};
  heap_.SetSlot(a, 0, r1);
  heap_.SetSlot(a, 1, r2);
  env_.clean_outrefs.insert(r1);
  EXPECT_EQ(BottomUp(a), std::vector<ObjectId>{r2});
}

TEST_F(SuspectTraceTest, Figure4BackEdgeGivesSccSharedOutset) {
  // Figure 4: a->z, b->z, z->x, x->y, y->z (SCC {z,x,y}), z->c, y->d remote.
  const ObjectId a = Obj(1), b = Obj(1), z = Obj(2), x = Obj(1), y = Obj(2);
  const ObjectId c{1, 50}, d{2, 60};
  Edge(a, 0, z);
  Edge(b, 0, z);
  Edge(z, 0, x);
  heap_.SetSlot(z, 1, c);
  Edge(x, 0, y);
  heap_.SetSlot(y, 0, d);
  Edge(y, 1, z);  // back edge closing the SCC

  // Trace a first (the order that breaks the naive first-cut algorithm),
  // then b: both must see the full outset {c, d}.
  BottomUpOutsetComputer<TestEnv> computer(heap_, store_, env_);
  const auto outset_a = store_.Get(computer.TraceFrom(a));
  const auto outset_b = store_.Get(computer.TraceFrom(b));
  EXPECT_EQ(outset_a, (std::vector<ObjectId>{c, d}));
  EXPECT_EQ(outset_b, (std::vector<ObjectId>{c, d}));
  // Each object traced exactly once (§5.2's whole point).
  EXPECT_EQ(computer.stats().objects_traced, 5u);
  EXPECT_EQ(computer.stats().object_visits, 5u);
}

TEST_F(SuspectTraceTest, Figure4WithoutBackEdgeStillComplete) {
  // Without y->z there is no SCC, but sharing of the {x,y} tail must still
  // give b the outref c discovered via z.
  const ObjectId a = Obj(1), b = Obj(1), z = Obj(2), x = Obj(1), y = Obj(1);
  const ObjectId c{1, 50}, d{2, 60};
  Edge(a, 0, z);
  Edge(b, 0, z);
  Edge(z, 0, x);
  heap_.SetSlot(z, 1, c);
  Edge(x, 0, y);
  heap_.SetSlot(y, 0, d);

  BottomUpOutsetComputer<TestEnv> computer(heap_, store_, env_);
  EXPECT_EQ(store_.Get(computer.TraceFrom(a)), (std::vector<ObjectId>{c, d}));
  EXPECT_EQ(store_.Get(computer.TraceFrom(b)), (std::vector<ObjectId>{c, d}));
  EXPECT_EQ(computer.stats().objects_traced, 5u);
}

TEST_F(SuspectTraceTest, NestedSccsResolveToLeaders) {
  // Two SCCs in sequence: {a,b} -> {c,d} -> remote r. All four share r.
  const ObjectId a = Obj(2), b = Obj(1), c = Obj(2), d = Obj(1);
  const ObjectId r{1, 9};
  Edge(a, 0, b);
  Edge(b, 0, a);
  Edge(a, 1, c);
  Edge(c, 0, d);
  Edge(d, 0, c);
  heap_.SetSlot(c, 1, r);
  BottomUpOutsetComputer<TestEnv> computer(heap_, store_, env_);
  EXPECT_EQ(store_.Get(computer.TraceFrom(a)), std::vector<ObjectId>{r});
  EXPECT_EQ(store_.Get(computer.TraceFrom(b)), std::vector<ObjectId>{r});
  EXPECT_EQ(store_.Get(computer.TraceFrom(c)), std::vector<ObjectId>{r});
}

TEST_F(SuspectTraceTest, DeepChainDoesNotOverflowStack) {
  // 200k-object chain: the iterative DFS must handle it.
  const std::size_t n = 200'000;
  std::vector<ObjectId> chain;
  chain.reserve(n);
  for (std::size_t i = 0; i < n; ++i) chain.push_back(Obj(1));
  for (std::size_t i = 0; i + 1 < n; ++i) Edge(chain[i], 0, chain[i + 1]);
  const ObjectId r{1, 5};
  heap_.SetSlot(chain.back(), 0, r);
  EXPECT_EQ(BottomUp(chain.front()), std::vector<ObjectId>{r});
}

TEST_F(SuspectTraceTest, IndependentTracerMatchesOnFigure4) {
  const ObjectId a = Obj(1), b = Obj(1), z = Obj(2), x = Obj(1), y = Obj(2);
  const ObjectId c{1, 50}, d{2, 60};
  Edge(a, 0, z);
  Edge(b, 0, z);
  Edge(z, 0, x);
  heap_.SetSlot(z, 1, c);
  Edge(x, 0, y);
  heap_.SetSlot(y, 0, d);
  Edge(y, 1, z);

  TestEnv env2 = env_;
  IndependentOutsetTracer<TestEnv> independent(heap_, env2);
  EXPECT_EQ(independent.TraceFrom(a), (std::vector<ObjectId>{c, d}));
  EXPECT_EQ(independent.TraceFrom(b), (std::vector<ObjectId>{c, d}));
  // The §5.1 tracer revisits shared objects: more visits than objects.
  EXPECT_GT(independent.stats().object_visits,
            independent.stats().objects_traced);
}

// Property: on random graphs, bottom-up (§5.2) == independent tracing (§5.1).
class OutsetEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutsetEquivalence, BottomUpMatchesIndependentOracle) {
  Rng rng(GetParam());
  Heap heap(0);
  const std::size_t objects = 40 + rng.NextBelow(60);
  const std::size_t slots = 3;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < objects; ++i) ids.push_back(heap.Allocate(slots));

  TestEnv env;
  env.heap = &heap;
  // Random local edges, remote refs, and clean markings.
  for (const ObjectId id : ids) {
    for (std::size_t s = 0; s < slots; ++s) {
      const double roll = rng.NextDouble();
      if (roll < 0.5) {
        heap.SetSlot(id, s, ids[rng.NextBelow(ids.size())]);
      } else if (roll < 0.7) {
        const ObjectId remote{static_cast<SiteId>(1 + rng.NextBelow(3)),
                              rng.NextBelow(10)};
        heap.SetSlot(id, s, remote);
        if (rng.NextBool(0.3)) env.clean_outrefs.insert(remote);
      }
    }
  }
  for (const ObjectId id : ids) {
    if (rng.NextBool(0.15)) env.clean_objects.insert(id);
  }
  std::vector<ObjectId> roots;
  for (const ObjectId id : ids) {
    if (rng.NextBool(0.2) && !env.clean_objects.contains(id)) {
      roots.push_back(id);
    }
  }

  TestEnv env_a = env, env_b = env;
  OutsetStore store;
  BottomUpOutsetComputer<TestEnv> bottom_up(heap, store, env_a);
  IndependentOutsetTracer<TestEnv> independent(heap, env_b);
  for (const ObjectId root : roots) {
    EXPECT_EQ(store.Get(bottom_up.TraceFrom(root)),
              independent.TraceFrom(root))
        << "divergence from root " << root << " with seed " << GetParam();
  }
  EXPECT_EQ(env_a.suspect_marked, env_b.suspect_marked);
  // §5.2 guarantee: each object entered at most once.
  EXPECT_EQ(bottom_up.stats().object_visits,
            bottom_up.stats().objects_traced);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, OutsetEquivalence,
                         ::testing::Range<std::uint64_t>(1, 33));

// --- SiteBackInfo ------------------------------------------------------------

TEST(SiteBackInfoTest, InsetsAreExactInverse) {
  SiteBackInfo info;
  const ObjectId i1{0, 1}, i2{0, 2};
  const ObjectId o1{1, 1}, o2{1, 2}, o3{2, 1};
  info.inref_outsets[i1] = {o1, o2};
  info.inref_outsets[i2] = {o2, o3};
  info.RecomputeInsets();
  EXPECT_EQ(info.outref_insets.at(o1), std::vector<ObjectId>{i1});
  EXPECT_EQ(info.outref_insets.at(o2), (std::vector<ObjectId>{i1, i2}));
  EXPECT_EQ(info.outref_insets.at(o3), std::vector<ObjectId>{i2});
  EXPECT_EQ(info.stored_elements(), 8u);
}

TEST(SiteBackInfoTest, ClearEmptiesBothViews) {
  SiteBackInfo info;
  info.inref_outsets[ObjectId{0, 1}] = {ObjectId{1, 1}};
  info.RecomputeInsets();
  info.clear();
  EXPECT_TRUE(info.inref_outsets.empty());
  EXPECT_TRUE(info.outref_insets.empty());
  EXPECT_EQ(info.stored_elements(), 0u);
}

}  // namespace
}  // namespace dgc
