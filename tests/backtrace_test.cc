// Tests for the back-tracing engine (Section 4): message complexity 2E + P,
// back thresholds, visited marks, branching, concurrent traces, timeouts,
// and fault tolerance.
#include <gtest/gtest.h>

#include <vector>

#include "core/system.h"
#include "workload/builders.h"
#include "workload/figures.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  config.back_threshold_increment = 2;
  return config;
}

/// Runs rounds without back tracing until every ioref of the cycle is deep
/// into suspicion, then returns — so tests can trigger one trace explicitly
/// and measure it in isolation.
void RipenSuspicion(System& system, int rounds = 12) {
  system.RunRounds(rounds);
}

// --- Message complexity (§4.6): 2E + P --------------------------------------

struct RingCase {
  std::size_t sites;
  std::size_t objects_per_site;
};

class MessageComplexity : public ::testing::TestWithParam<RingCase> {};

TEST_P(MessageComplexity, RingCostsTwoPerEdgePlusReports) {
  const auto [site_count, objects_per_site] = GetParam();
  CollectorConfig config = Config();
  config.estimated_cycle_length = static_cast<Distance>(site_count + 2);
  config.enable_back_tracing = false;  // ripen manually first
  System system(site_count, config);
  const auto cycle = workload::BuildCycle(
      system, {.sites = site_count, .objects_per_site = objects_per_site});
  RipenSuspicion(system, static_cast<int>(site_count) + 10);

  // One explicit trace from site 0's outref; count only its messages.
  system.network().ResetStats();
  Site& initiator = system.site(0);
  const ObjectId start = initiator.tables().outrefs().begin()->first;
  initiator.back_tracer().StartTrace(start);
  system.SettleNetwork();

  const NetworkStats& stats = system.network().stats();
  // Ring: E = site_count inter-site references; every site participates.
  const std::uint64_t expected_edges = site_count;
  EXPECT_EQ(stats.count_of<BackLocalCallMsg>(), expected_edges);
  EXPECT_EQ(stats.count_of<BackReplyMsg>(), expected_edges);
  // Report phase: one message per participant; the initiator's own report is
  // a self-delivery, so inter-site reports = P - 1.
  EXPECT_EQ(stats.count_of<BackReportMsg>(), site_count - 1);
  // Nothing else moved.
  EXPECT_EQ(stats.inter_site_sent,
            2 * expected_edges + (site_count - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Rings, MessageComplexity,
    ::testing::Values(RingCase{2, 1}, RingCase{3, 1}, RingCase{4, 2},
                      RingCase{6, 1}, RingCase{8, 3}));

TEST(MessageComplexityTest, DenseCycleCountsEveryEdgeOnce) {
  // Complete digraph over 4 sites (one object per site, each pointing at all
  // others): E = 12 inter-site references, P = 4 sites.
  CollectorConfig config = Config();
  config.estimated_cycle_length = 6;
  config.enable_back_tracing = false;
  System system(4, config);
  std::vector<ObjectId> objects;
  for (SiteId s = 0; s < 4; ++s) objects.push_back(system.NewObject(s, 3));
  for (std::size_t i = 0; i < 4; ++i) {
    std::size_t slot = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) system.Wire(objects[i], slot++, objects[j]);
    }
  }
  RipenSuspicion(system, 14);
  system.network().ResetStats();
  Site& initiator = system.site(0);
  initiator.back_tracer().StartTrace(
      initiator.tables().outrefs().begin()->first);
  system.SettleNetwork();
  const NetworkStats& stats = system.network().stats();
  EXPECT_EQ(stats.count_of<BackLocalCallMsg>(), 12u);
  EXPECT_EQ(stats.count_of<BackReplyMsg>(), 12u);
  EXPECT_EQ(stats.count_of<BackReportMsg>(), 3u);
}

// --- Back thresholds (§4.3) --------------------------------------------------

TEST(BackThresholdTest, NoTraceStartsBeforeThresholdCrossed) {
  CollectorConfig config = Config();
  config.estimated_cycle_length = 20;  // D2 = 22: far away
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(10);  // distances ~10 < 22
  EXPECT_EQ(system.AggregateBackTracerStats().traces_started, 0u);
}

TEST(BackThresholdTest, LiveSuspectStopsGeneratingTraces) {
  // A live two-site loop whose distances sit just above the suspicion
  // threshold: early traces return Live and bump thresholds; eventually the
  // threshold exceeds the (stable) distance and tracing stops.
  CollectorConfig config = Config();
  config.suspicion_threshold = 1;  // make the live loop suspected
  config.estimated_cycle_length = 1;
  config.back_threshold_increment = 3;
  System system(3, config);
  // root@2 -> chain of 3 remote hops -> loop {p@0 <-> q@1}: distances 3, 4.
  const ObjectId root = system.NewObject(2, 1);
  system.SetPersistentRoot(root);
  const ObjectId hop = system.NewObject(1, 1);
  const ObjectId p = system.NewObject(0, 1);
  const ObjectId q = system.NewObject(1, 1);
  system.Wire(root, 0, hop);
  system.Wire(hop, 0, p);
  system.Wire(p, 0, q);
  system.Wire(q, 0, p);

  system.RunRounds(30);
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_GT(stats.traces_completed_live, 0u);
  EXPECT_EQ(stats.traces_completed_garbage, 0u);
  // Thresholds must have risen above the stable distances: in the last ten
  // rounds no new trace may start.
  const auto started_before = stats.traces_started;
  system.RunRounds(10);
  EXPECT_EQ(system.AggregateBackTracerStats().traces_started, started_before);
  EXPECT_TRUE(system.ObjectExists(p));
  EXPECT_TRUE(system.ObjectExists(q));
}

TEST(BackThresholdTest, GarbageRetriesUntilCollected) {
  // Even if an early trace aborts Live (premature), garbage keeps
  // generating traces and is eventually collected (§4.3: the back threshold
  // is an optimization and does not compromise completeness).
  CollectorConfig config = Config();
  config.suspicion_threshold = 6;
  config.estimated_cycle_length = 0;  // D2 == D: traces start immediately —
                                      // deliberately premature
  config.back_threshold_increment = 1;
  System system(3, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  system.RunRounds(40);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
}

// --- Branching (Figure 3) ----------------------------------------------------

TEST(BranchingTest, Figure3TraceReturnsLiveViaRootPath) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(5, config);
  const auto w = workload::BuildFigure3(system);
  RipenSuspicion(system, 10);

  // Start a trace from outref d at site R(2): it must branch at inref c
  // (sources P and Q) and return Live through the root path into a.
  Site& r = system.site(2);
  ASSERT_NE(r.tables().FindOutref(w.d), nullptr);
  bool completed = false;
  BackResult outcome = BackResult::kGarbage;
  r.back_tracer().set_outcome_observer(
      [&](const TraceOutcome& trace_outcome) {
        completed = true;
        outcome = trace_outcome.result;
      });
  r.back_tracer().StartTrace(w.d);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kLive);
  // Live outcome: visited marks cleared everywhere, nothing flagged.
  for (SiteId s = 0; s < 5; ++s) {
    for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
      (void)obj;
      EXPECT_TRUE(entry.visited.empty());
      EXPECT_FALSE(entry.garbage_flagged);
    }
  }
}

TEST(BranchingTest, VisitedMarksPreventInfiniteLooping) {
  // Figure 2's two interlocked cycles: a trace closes over them exactly once.
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto w = workload::BuildFigure2(system);
  RipenSuspicion(system, 10);
  Site& q = system.site(1);
  ASSERT_NE(q.tables().FindOutref(w.c), nullptr);
  bool completed = false;
  q.back_tracer().set_outcome_observer(
      [&](const TraceOutcome&) { completed = true; });
  q.back_tracer().StartTrace(w.c);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(q.back_tracer().idle());
}

// --- Concurrent traces (§4.7) -------------------------------------------------

TEST(ConcurrentTracesTest, TwoSimultaneousTracesOnOneCycleAreHarmless) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 10);
  // Both sites start traces into the same cycle at the same instant.
  system.site(0).back_tracer().StartTrace(
      system.site(0).tables().outrefs().begin()->first);
  system.site(1).back_tracer().StartTrace(
      system.site(1).tables().outrefs().begin()->first);
  system.SettleNetwork();
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_EQ(stats.traces_started, 2u);
  // At least one confirms garbage; the other may find iorefs deleted midway
  // — either way both complete and the cycle dies.
  EXPECT_GE(stats.traces_completed_garbage, 1u);
  system.RunRounds(4);
  EXPECT_FALSE(system.ObjectExists(cycle.objects[0]));
  EXPECT_FALSE(system.ObjectExists(cycle.objects[1]));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(ConcurrentTracesTest, ManyTracesAcrossDisjointCyclesDoNotInterfere) {
  CollectorConfig config = Config();
  System system(6, config);
  std::vector<workload::CycleHandles> cycles;
  for (SiteId s = 0; s < 6; s += 2) {
    cycles.push_back(workload::BuildCycle(
        system, {.sites = 2, .objects_per_site = 1, .first_site = s}));
  }
  system.RunRounds(20);
  for (const auto& cycle : cycles) {
    for (const ObjectId id : cycle.objects) {
      EXPECT_FALSE(system.ObjectExists(id)) << id;
    }
  }
}

// --- Timeouts and crashed sites (§4.6) ----------------------------------------

TEST(TimeoutTest, CrashedSiteMakesTraceAssumeLive) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  config.back_call_timeout = 500;
  System system(3, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  system.network().SetSiteDown(2, true);

  Site& initiator = system.site(0);
  bool completed = false;
  BackResult outcome = BackResult::kGarbage;
  initiator.back_tracer().set_outcome_observer(
      [&](const TraceOutcome& trace_outcome) {
        completed = true;
        outcome = trace_outcome.result;
      });
  initiator.back_tracer().StartTrace(
      initiator.tables().outrefs().begin()->first);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  // The branch through the dead site timed out: safely assumed Live, so the
  // cycle is NOT collected this time (fault tolerance errs safe).
  EXPECT_EQ(outcome, BackResult::kLive);
  EXPECT_TRUE(system.ObjectExists(cycle.objects[0]));
  EXPECT_GE(system.AggregateBackTracerStats().timeouts, 1u);
}

TEST(TimeoutTest, CycleCollectedAfterSiteRecovers) {
  CollectorConfig config = Config();
  config.back_call_timeout = 500;
  config.report_timeout = 2000;
  System system(3, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  system.network().SetSiteDown(2, true);
  system.RunRounds(14);
  EXPECT_TRUE(system.ObjectExists(cycle.objects[0]));  // stalled, safe
  system.network().SetSiteDown(2, false);
  system.RunRounds(25);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
}

TEST(TimeoutTest, PartitionedLinkDelaysOnlyThatCycle) {
  // Sever the link inside cycle B's site pair; cycle A (other sites) is
  // unaffected; B is safely delayed and collected after the link heals.
  CollectorConfig config = Config();
  config.back_call_timeout = 400;
  config.report_timeout = 3000;
  System system(4, config);
  const auto cycle_a = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  const auto cycle_b = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 2});
  system.network().SetLinkDown(2, 3, true);
  system.RunRounds(20);
  EXPECT_FALSE(system.ObjectExists(cycle_a.objects[0]));
  EXPECT_TRUE(system.ObjectExists(cycle_b.objects[0]));  // delayed, safe
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  system.network().SetLinkDown(2, 3, false);
  system.RunRounds(25);
  EXPECT_FALSE(system.ObjectExists(cycle_b.objects[0]));
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

TEST(TimeoutTest, StaleVisitRecordsExpireToLive) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  config.back_call_timeout = 300;
  config.report_timeout = 1000;
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 10);
  // Start a trace, then crash the initiator's network before reports flow:
  // site 1's visit record must eventually expire and clear its marks.
  system.site(0).back_tracer().StartTrace(
      system.site(0).tables().outrefs().begin()->first);
  system.scheduler().RunUntil(system.scheduler().now() + 40);
  system.network().SetSiteDown(0, true);
  system.SettleNetwork();
  system.scheduler().RunUntil(system.scheduler().now() + 2000);
  system.site(1).StartLocalTrace();  // housekeeping runs ExpireStaleRecords
  system.SettleNetwork();
  for (const auto& [obj, entry] : system.site(1).tables().inrefs()) {
    (void)obj;
    EXPECT_TRUE(entry.visited.empty());
  }
}

// --- Engine edge cases ---------------------------------------------------------

TEST(EngineEdgeTest, TraceFromMissingOutrefCompletesGarbageHarmlessly) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(4);
  Site& site0 = system.site(0);
  bool completed = false;
  BackResult outcome = BackResult::kLive;
  site0.back_tracer().set_outcome_observer([&](const TraceOutcome& result) {
    completed = true;
    outcome = result.result;
  });
  site0.back_tracer().StartTrace(ObjectId{1, 999});  // no such outref
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kGarbage);  // deleted ioref ⇒ dead path
  // Nothing was visited, so the report flags nothing anywhere.
  for (SiteId s = 0; s < 2; ++s) {
    for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
      (void)obj;
      EXPECT_FALSE(entry.garbage_flagged);
    }
  }
  EXPECT_TRUE(site0.back_tracer().idle());
}

TEST(EngineEdgeTest, VisitBumpsBackThresholdByConfiguredIncrement) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  config.back_threshold_increment = 7;
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(8);
  Site& site0 = system.site(0);
  const ObjectId outref_ref = site0.tables().outrefs().begin()->first;
  const Distance before_out = site0.tables().FindOutref(outref_ref)->back_threshold;
  const Distance before_in =
      site0.tables().FindInref(cycle.objects[0])->back_threshold;
  site0.back_tracer().StartTrace(outref_ref);
  system.SettleNetwork();
  EXPECT_EQ(site0.tables().FindOutref(outref_ref)->back_threshold,
            before_out + 7);
  EXPECT_EQ(site0.tables().FindInref(cycle.objects[0])->back_threshold,
            before_in + 7);
}

TEST(EngineEdgeTest, InfiniteDistanceOutrefsNeverTrigger) {
  CollectorConfig config = Config();
  System system(2, config);
  // A freshly created table entry that no trace has touched yet carries
  // distance infinity; MaybeStartTraces must skip it (infinity is "unknown",
  // not "very suspected").
  const ObjectId obj = system.NewObject(1, 0);
  auto [entry, created] = system.site(0).tables().EnsureOutref(obj);
  ASSERT_TRUE(created);
  EXPECT_EQ(entry->distance, kDistanceInfinity);
  EXPECT_FALSE(entry->clean());
  EXPECT_EQ(system.site(0).back_tracer().MaybeStartTraces(), 0u);
}

// --- Report phase (§4.5) -------------------------------------------------------

TEST(ReportPhaseTest, GarbageOutcomeFlagsAllVisitedInrefs) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  system.site(0).back_tracer().StartTrace(
      system.site(0).tables().outrefs().begin()->first);
  system.SettleNetwork();
  for (SiteId s = 0; s < 3; ++s) {
    const InrefEntry* entry =
        system.site(s).tables().FindInref(cycle.objects[s]);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->garbage_flagged) << "site " << s;
    EXPECT_TRUE(entry->visited.empty());
  }
}

TEST(ReportPhaseTest, DeletedIorefDuringAnotherTraceIsHandled) {
  // Boyapati's problem case (acknowledgements): trace T2 is active at an
  // ioref deleted because trace T1 confirmed garbage. Frames provide the
  // return information, so T2 completes normally.
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  // Slow network so two traces interleave across several ticks.
  NetworkConfig net;
  net.latency = 40;
  System system(2, config, net);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 10);
  int completed = 0;
  for (SiteId s = 0; s < 2; ++s) {
    system.site(s).back_tracer().set_outcome_observer(
        [&](const TraceOutcome&) { ++completed; });
    system.site(s).back_tracer().StartTrace(
        system.site(s).tables().outrefs().begin()->first);
  }
  system.SettleNetwork();
  system.RunRounds(4);  // local traces delete flagged inrefs mid-flight
  EXPECT_EQ(completed, 2);
  EXPECT_FALSE(system.ObjectExists(cycle.objects[0]));
  EXPECT_TRUE(system.site(0).back_tracer().idle());
  EXPECT_TRUE(system.site(1).back_tracer().idle());
}

// --- Verdict cache -----------------------------------------------------------

TEST(VerdictCacheTest, GarbageReportRecordsVerdictsOnParticipants) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  Site& initiator = system.site(0);
  const ObjectId start = initiator.tables().outrefs().begin()->first;
  initiator.back_tracer().StartTrace(start);
  system.SettleNetwork();
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_EQ(stats.traces_completed_garbage, 1u);
  EXPECT_GT(stats.verdicts_recorded, 0u);
  // The report phase writes the verdict back at every participant: the
  // initiator keeps one for its start outref, the peer for its inref.
  const auto verdict =
      initiator.back_tracer().verdict_cache().Peek(IorefKind::kOutref, start);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, BackResult::kGarbage);
  EXPECT_GT(system.site(1).back_tracer().verdict_cache().size(), 0u);
}

TEST(VerdictCacheTest, CleanRuleEvictsCachedVerdict) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  Site& initiator = system.site(0);
  const ObjectId start = initiator.tables().outrefs().begin()->first;
  initiator.back_tracer().StartTrace(start);
  system.SettleNetwork();
  ASSERT_TRUE(initiator.back_tracer()
                  .verdict_cache()
                  .Peek(IorefKind::kOutref, start)
                  .has_value());
  // The ioref proves reachable (clean rule, §6.4): its verdict is stale.
  initiator.back_tracer().OnIorefCleaned(IorefKind::kOutref, start);
  EXPECT_FALSE(initiator.back_tracer()
                   .verdict_cache()
                   .Peek(IorefKind::kOutref, start)
                   .has_value());
  EXPECT_GE(initiator.back_tracer().verdict_cache().stats().evicted_cleaned,
            1u);
}

TEST(VerdictCacheTest, LocalTraceAppliesAgeOutVerdicts) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  Site& initiator = system.site(0);
  const ObjectId start = initiator.tables().outrefs().begin()->first;
  initiator.back_tracer().StartTrace(start);
  system.SettleNetwork();
  ASSERT_TRUE(initiator.back_tracer()
                  .verdict_cache()
                  .Peek(IorefKind::kOutref, start)
                  .has_value());
  // An entry survives exactly one local-trace apply (the one whose trigger
  // scan it answers) and ages out on the next.
  system.RunRound();
  EXPECT_TRUE(initiator.back_tracer()
                  .verdict_cache()
                  .Peek(IorefKind::kOutref, start)
                  .has_value());
  system.RunRound();
  EXPECT_FALSE(initiator.back_tracer()
                   .verdict_cache()
                   .Peek(IorefKind::kOutref, start)
                   .has_value());
}

TEST(VerdictCacheTest, CachedVerdictSkipsRedundantRestarts) {
  // A live loop sitting above a threshold that never moves (increment 0)
  // would restart a trace at every single trigger scan: distance exceeds
  // the threshold each round. The cached Live verdict answers the scans in
  // between instead, skipping redundant traces without changing outcomes.
  CollectorConfig config = Config();
  config.suspicion_threshold = 1;
  config.estimated_cycle_length = 1;
  config.back_threshold_increment = 0;
  System system(3, config);
  const ObjectId root = system.NewObject(2, 1);
  system.SetPersistentRoot(root);
  const ObjectId hop = system.NewObject(1, 1);
  const ObjectId p = system.NewObject(0, 1);
  const ObjectId q = system.NewObject(1, 1);
  system.Wire(root, 0, hop);
  system.Wire(hop, 0, p);
  system.Wire(p, 0, q);
  system.Wire(q, 0, p);
  system.RunRounds(30);
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_GT(stats.traces_completed_live, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.trace_starts_skipped, 0u);
  // Skipping is an optimization only: the loop stays alive.
  EXPECT_TRUE(system.ObjectExists(p));
  EXPECT_TRUE(system.ObjectExists(q));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

// --- Trace coalescing (§4.7 refined) -----------------------------------------

TEST(CoalescingTest, OverlappingTracesShareOneTraversal) {
  // All sites of one cycle trigger simultaneously on a slow network, so the
  // traces genuinely overlap. Junior traces park on the senior's visited
  // marks instead of timing out against them; every trace still completes
  // and the cycle dies.
  CollectorConfig config = Config();
  config.estimated_cycle_length = 6;
  config.enable_back_tracing = false;
  NetworkConfig net;
  net.latency = 20;
  System system(4, config, net);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 1});
  RipenSuspicion(system, 14);
  int completed = 0;
  for (SiteId s = 0; s < 4; ++s) {
    system.site(s).back_tracer().set_outcome_observer(
        [&](const TraceOutcome&) { ++completed; });
    system.site(s).back_tracer().StartTrace(
        system.site(s).tables().outrefs().begin()->first);
  }
  system.SettleNetwork();
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_EQ(stats.traces_started, 4u);
  EXPECT_EQ(completed, 4);
  EXPECT_GE(stats.branches_coalesced, 1u);
  EXPECT_GE(stats.traces_completed_garbage, 1u);
  system.RunRounds(4);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(CoalescingTest, WaiterInheritsGarbageVerdict) {
  // Two initiators on a two-site cycle: the junior's deferred branch is
  // answered from the senior's Garbage report (waiters_resolved), not by
  // re-traversing.
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  NetworkConfig net;
  net.latency = 20;
  System system(2, config, net);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  for (SiteId s = 0; s < 2; ++s) {
    system.site(s).back_tracer().StartTrace(
        system.site(s).tables().outrefs().begin()->first);
  }
  system.SettleNetwork();
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_GE(stats.branches_coalesced, 1u);
  EXPECT_GE(stats.waiters_resolved, 1u);
  system.RunRounds(4);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

// --- Call batching -----------------------------------------------------------

TEST(CallBatchingTest, SimultaneousCallsToOneSiteShareOneMessage) {
  // Two disjoint cycles spanning the same site pair, traced simultaneously:
  // each hop produces two back calls for the same destination in the same
  // instant, which ship as one BackCallBatchMsg instead of two messages.
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  const auto first =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const auto second =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  RipenSuspicion(system, 12);
  system.network().ResetStats();
  std::vector<ObjectId> starts;
  for (const auto& [ref, entry] : system.site(0).tables().outrefs()) {
    (void)entry;
    starts.push_back(ref);
  }
  ASSERT_EQ(starts.size(), 2u);
  for (const ObjectId ref : starts) {
    system.site(0).back_tracer().StartTrace(ref);
  }
  system.SettleNetwork();
  const NetworkStats& net_stats = system.network().stats();
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_GE(net_stats.count_of<BackCallBatchMsg>(), 1u);
  EXPECT_GE(stats.calls_batched, 2u);
  EXPECT_EQ(stats.traces_completed_garbage, 2u);
  system.RunRounds(4);
  for (const ObjectId id : first.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
  for (const ObjectId id : second.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

}  // namespace
}  // namespace dgc
