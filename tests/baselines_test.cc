// Tests for the Section 7 comparator collectors: coordinated global
// mark-sweep, Hughes timestamps, and migration-based cycle collection —
// each must actually collect cycles, and each must exhibit the structural
// weakness the paper criticizes it for.
#include <gtest/gtest.h>

#include "baselines/central_service.h"
#include "baselines/global_trace.h"
#include "baselines/group_trace.h"
#include "baselines/hughes.h"
#include "baselines/migration.h"
#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig LocalOnly() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.enable_back_tracing = false;
  return config;
}

// --- Coordinated global mark-sweep -------------------------------------------

TEST(GlobalTraceTest, CollectsCyclesAndPlainGarbage) {
  System system(3, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  const ObjectId live = system.NewObject(0, 0);
  system.SetPersistentRoot(live);
  const ObjectId dead = system.NewObject(1, 0);

  baselines::GlobalTraceCollector collector(system);
  const auto stats = collector.RunCycle();
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.objects_swept, 4u);  // 3 cycle objects + dead
  EXPECT_TRUE(system.ObjectExists(live));
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
  EXPECT_GE(stats.gray_messages, 0u);
  EXPECT_GT(stats.control_messages, 0u);
}

TEST(GlobalTraceTest, MarksAcrossSites) {
  System system(2, LocalOnly());
  // live chain root@0 -> a@1 -> b@0: marking must cross sites both ways.
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  const ObjectId a = system.NewObject(1, 1);
  const ObjectId b = system.NewObject(0, 0);
  system.Wire(root, 0, a);
  system.Wire(a, 0, b);
  baselines::GlobalTraceCollector collector(system);
  const auto stats = collector.RunCycle();
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(system.ObjectExists(a));
  EXPECT_TRUE(system.ObjectExists(b));
  EXPECT_GE(stats.gray_messages, 2u);
}

TEST(GlobalTraceTest, CrashedSiteStallsTheWholeCollection) {
  System system(3, LocalOnly());
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const ObjectId unrelated_dead = system.NewObject(0, 0);
  system.network().SetSiteDown(2, true);  // site 2 holds none of the garbage!
  baselines::GlobalTraceCollector collector(system);
  const auto stats = collector.RunCycle(/*max_wait=*/20'000);
  // The paper's criticism: a global trace "requires the cooperation of all
  // sites before it can collect any garbage".
  EXPECT_FALSE(stats.completed);
  EXPECT_TRUE(system.ObjectExists(unrelated_dead));
}

// --- Hughes timestamps ---------------------------------------------------------

TEST(HughesTest, CollectsCyclesOnceThresholdPasses) {
  System system(3, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  const ObjectId live_remote = system.NewObject(1, 0);
  workload::TetherToRoot(system, live_remote, 0);

  baselines::HughesCollector collector(system, /*lag_rounds=*/4);
  for (int round = 0; round < 20; ++round) collector.RunRound();
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(live_remote));
  EXPECT_GT(collector.threshold(), 0);
}

TEST(HughesTest, LiveChainSurvivesIndefinitely) {
  System system(4, LocalOnly());
  // Long live chain: timestamps lag by depth but the lagged threshold must
  // never overtake them.
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  ObjectId previous = root;
  std::vector<ObjectId> chain;
  for (int i = 0; i < 6; ++i) {
    const ObjectId next = system.NewObject((i + 1) % 4, 1);
    system.Wire(previous, 0, next);
    chain.push_back(next);
    previous = next;
  }
  baselines::HughesCollector collector(system, /*lag_rounds=*/8);
  for (int round = 0; round < 30; ++round) collector.RunRound();
  for (const ObjectId id : chain) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
}

TEST(HughesTest, OneCrashedSiteBlocksCollectionEverywhere) {
  System system(4, LocalOnly());
  const auto cycle = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  baselines::HughesCollector collector(system, /*lag_rounds=*/3);
  // Site 3 crashes before anything happens — it holds NO part of the
  // cycle, yet the global threshold can never advance and the cycle is
  // never collected anywhere (the paper's criticism of Hughes).
  system.network().SetSiteDown(3, true);
  for (int round = 0; round < 25; ++round) collector.RunRound();
  EXPECT_EQ(collector.threshold(), 0);
  EXPECT_TRUE(system.ObjectExists(cycle.objects[0]));
  EXPECT_TRUE(system.ObjectExists(cycle.objects[1]));
  // Contrast: once the site recovers, collection resumes.
  system.network().SetSiteDown(3, false);
  for (int round = 0; round < 25; ++round) collector.RunRound();
  EXPECT_FALSE(system.ObjectExists(cycle.objects[0]));
  EXPECT_FALSE(system.ObjectExists(cycle.objects[1]));
}

// --- Central service -------------------------------------------------------------

TEST(CentralServiceTest, DetectsAndCollectsInterSiteCycles) {
  System system(3, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  const ObjectId live_remote = system.NewObject(1, 0);
  workload::TetherToRoot(system, live_remote, 0);
  system.RunRound();

  baselines::CentralServiceCollector service(system);
  service.RunCycle();
  EXPECT_EQ(service.stats().sites_reported, 3u);
  EXPECT_EQ(service.stats().inrefs_condemned, 3u);  // the whole ring
  system.RunRounds(3);  // local traces reclaim the condemned cycle
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(live_remote));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(CentralServiceTest, LiveCycleNotCondemned) {
  System system(2, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  workload::TetherToRoot(system, cycle.head(), 0);
  system.RunRound();
  baselines::CentralServiceCollector service(system);
  service.RunCycle();
  EXPECT_EQ(service.stats().inrefs_condemned, 0u);
  system.RunRounds(3);
  EXPECT_TRUE(system.ObjectExists(cycle.objects[0]));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(CentralServiceTest, SilentSiteBlocksAllCollection) {
  System system(4, LocalOnly());
  // The cycle lives entirely on sites {0,1}; site 3 is down and holds
  // nothing of interest — yet the service cannot safely condemn anything.
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRound();
  system.network().SetSiteDown(3, true);
  baselines::CentralServiceCollector service(system);
  service.RunCycle();
  EXPECT_LT(service.stats().sites_reported, 4u);
  EXPECT_EQ(service.stats().inrefs_condemned, 0u);
  system.RunRounds(3);
  EXPECT_TRUE(system.ObjectExists(cycle.objects[0]));
  // Recovery: the site returns, the next cycle condemns.
  system.network().SetSiteDown(3, false);
  service.RunCycle();
  system.RunRounds(3);
  EXPECT_FALSE(system.ObjectExists(cycle.objects[0]));
}

TEST(CentralServiceTest, SummaryBytesScaleWithAllReachabilityNotSuspects) {
  // The bottleneck figure: summary bytes grow with the LIVE structure too,
  // because the service needs full inref-outref reachability — where back
  // tracing's retained back info covers suspected iorefs only.
  System system(2, LocalOnly());
  // Large live structure: one root chain of 100 objects per site with a
  // remote hop at the end.
  for (SiteId s = 0; s < 2; ++s) {
    const ObjectId root = system.NewObject(s, 1);
    system.SetPersistentRoot(root);
    ObjectId previous = root;
    for (int i = 0; i < 100; ++i) {
      const ObjectId next = system.NewObject(s, 1);
      system.Wire(previous, 0, next);
      previous = next;
    }
    system.Wire(previous, 0, system.NewObject((s + 1) % 2, 0));
  }
  system.RunRound();
  baselines::CentralServiceCollector service(system);
  service.RunCycle();
  EXPECT_GT(service.stats().summary_bytes, 0u);
  // Back tracing's retained info on the same world: nothing is suspected,
  // so the per-site back information is empty.
  for (SiteId s = 0; s < 2; ++s) {
    EXPECT_EQ(system.site(s).back_info().stored_elements(), 0u);
  }
}

// --- Group tracing --------------------------------------------------------------

TEST(GroupTraceTest, CollectsCycleThatFitsInTheGroup) {
  System system(5, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  const ObjectId bystander = system.NewObject(4, 0);
  system.SetPersistentRoot(bystander);
  system.RunRounds(6);  // ripen suspicion
  baselines::GroupTraceCollector collector(system, /*max_group_sites=*/4);
  const auto group = collector.RunOnFirstSuspect();
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->size(), 3u);  // exactly the cycle's sites
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(bystander));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
}

TEST(GroupTraceTest, CycleLargerThanGroupBoundIsNeverCollected) {
  // The paper's criticism: "inter-group cycles may never be collected".
  System system(6, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 6, .objects_per_site = 1});
  system.RunRounds(10);
  baselines::GroupTraceCollector collector(system, /*max_group_sites=*/4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto group = collector.RunOnFirstSuspect();
    ASSERT_TRUE(group.has_value());
    EXPECT_LE(group->size(), 4u);
  }
  // Ten attempts later the 6-site cycle is still fully alive: the two
  // out-of-group sites' references always look like roots.
  for (const ObjectId id : cycle.objects) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  // Contrast: back tracing reclaims it without any size bound.
  CollectorConfig bt;
  bt.suspicion_threshold = 2;
  bt.estimated_cycle_length = 8;
  System system2(6, bt);
  const auto cycle2 =
      workload::BuildCycle(system2, {.sites = 6, .objects_per_site = 1});
  system2.RunRounds(25);
  for (const ObjectId id : cycle2.objects) {
    EXPECT_FALSE(system2.ObjectExists(id)) << id;
  }
}

TEST(GroupTraceTest, LiveChainDragsExtraSitesIntoTheGroup) {
  // A 2-site garbage cycle pointing at a live chain across two more sites:
  // the group must include the chain's sites (no locality), where back
  // tracing would involve only the cycle's two sites.
  System system(5, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const auto chain = workload::AttachChain(system, cycle.objects[1], 1, 3);
  const ObjectId keeper = system.NewObject(4, 1);
  system.SetPersistentRoot(keeper);
  system.Wire(keeper, 0, chain.back());  // chain's tail is live
  system.RunRounds(8);
  baselines::GroupTraceCollector collector(system, /*max_group_sites=*/5);
  const auto group = collector.RunOnFirstSuspect();
  ASSERT_TRUE(group.has_value());
  EXPECT_GT(group->size(), 2u) << "group should exceed the cycle's sites";
  // Live chain survives; cycle dies.
  EXPECT_TRUE(system.ObjectExists(chain.back()));
  EXPECT_FALSE(system.ObjectExists(cycle.objects[0]));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(GroupTraceTest, LiveSuspectNotCollected) {
  System system(3, LocalOnly());
  // Live two-site loop beyond the suspicion threshold (distance 3-4).
  const ObjectId root = system.NewObject(2, 1);
  system.SetPersistentRoot(root);
  const ObjectId hop = system.NewObject(0, 1);
  const ObjectId p = system.NewObject(1, 1);
  const ObjectId q = system.NewObject(0, 1);
  system.Wire(root, 0, hop);
  system.Wire(hop, 0, p);
  system.Wire(p, 0, q);
  system.Wire(q, 0, p);
  system.RunRounds(6);
  baselines::GroupTraceCollector collector(system, /*max_group_sites=*/2);
  const auto group = collector.RunOnFirstSuspect();
  ASSERT_TRUE(group.has_value());
  EXPECT_TRUE(system.ObjectExists(p));
  EXPECT_TRUE(system.ObjectExists(q));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

// --- Migration -------------------------------------------------------------------

TEST(MigrationTest, ConvergesCycleToOneSiteAndCollects) {
  System system(3, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  // Extra chord: object 1 also holds object 0, so the first migrated
  // suspect has two remote holders and its move must patch a third-party
  // site.
  system.Wire(cycle.objects[1], 1, cycle.objects[0]);
  system.RunRounds(6);  // ripen distances past the migrate threshold

  baselines::MigrationCollector collector(system, /*migrate_threshold=*/4);
  const std::size_t migrations = collector.Converge();
  system.RunRounds(2);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_GE(migrations, 2u);  // at least two objects had to move
  EXPECT_GT(collector.stats().bytes_moved, 0u);
  EXPECT_GT(collector.stats().patch_messages, 0u);
}

TEST(MigrationTest, LiveObjectsAreNotDisturbedBelowThreshold) {
  System system(3, LocalOnly());
  const ObjectId remote = system.NewObject(1, 0);
  workload::TetherToRoot(system, remote, 0);
  system.RunRounds(4);
  baselines::MigrationCollector collector(system, /*migrate_threshold=*/4);
  EXPECT_EQ(collector.MigrateOneSuspect(), std::nullopt);
  EXPECT_TRUE(system.ObjectExists(remote));
}

TEST(MigrationTest, PatchingKeepsGraphAndTablesConsistent) {
  System system(3, LocalOnly());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  // A live holder at site 2 also references a cycle member... it must be
  // patched when that member moves. (Keep the cycle live via this holder so
  // we can inspect the post-migration graph.)
  const ObjectId holder = system.NewObject(2, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, cycle.objects[1]);
  system.RunRounds(8);

  baselines::MigrationCollector collector(system, /*migrate_threshold=*/6);
  // Force-migrate the cycle member the holder points at, if suspected;
  // otherwise nothing moves and the test trivially holds.
  const auto moved = collector.MigrateOneSuspect();
  if (moved.has_value()) {
    EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
    EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
        << system.CheckReferentialIntegrity();
  }
}

TEST(MigrationTest, CostsScaleWithObjectPayload) {
  System system(2, LocalOnly());
  // Two-site cycle with fat objects (many slots): bytes_moved must reflect
  // the payload, unlike back tracing which never moves objects.
  const ObjectId a = system.NewObject(0, 16);
  const ObjectId b = system.NewObject(1, 16);
  system.Wire(a, 0, b);
  system.Wire(b, 0, a);
  system.RunRounds(6);
  baselines::MigrationCollector collector(system, /*migrate_threshold=*/4);
  collector.Converge();
  EXPECT_GE(collector.stats().bytes_moved, 16u * 8u);
}

}  // namespace
}  // namespace dgc
