// Chaos harness: fault plans (site outages, crash-restarts, link flaps, drop
// bursts, latency spikes) injected into running collections, checked against
// the twin oracles — safety (no live object is ever collected, under any
// fault schedule) and liveness (every garbage cycle is collected once the
// faults heal) — plus the reliable-channel equivalence test: with
// retransmission enabled, a lossy run must converge to the same final heap
// as a lossless one.
#include <gtest/gtest.h>

#include <vector>

#include "core/system.h"
#include "sim/fault_plan.h"
#include "workload/builders.h"

namespace dgc {
namespace {

/// Schedules `waves` waves of per-site local traces at absolute times
/// `start + w * spacing`, staggering site s by `s * stagger` inside each
/// wave. Scheduled up front so the traces genuinely interleave with a fault
/// plan's events during one SettleNetwork.
void ScheduleTraceWaves(System& system, SimTime start, std::size_t waves,
                        SimTime spacing, SimTime stagger) {
  for (std::size_t w = 0; w < waves; ++w) {
    for (SiteId s = 0; s < system.site_count(); ++s) {
      system.scheduler().At(
          start + static_cast<SimTime>(w) * spacing +
              static_cast<SimTime>(s) * stagger,
          [&system, s] {
            if (!system.site(s).trace_in_flight()) {
              system.site(s).StartLocalTrace();
            }
          });
    }
  }
}

/// True when no back-trace state is stranded anywhere: no active frames, no
/// visit records awaiting a report, no calls still parked on a suspect peer.
bool NoStrandedTraceState(const System& system) {
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const BackTracer& bt = system.site(s).back_tracer();
    if (bt.active_frames() != 0 || bt.visit_record_count() != 0 ||
        bt.parked_call_count() != 0) {
      return false;
    }
  }
  return true;
}

void ExpectNoStrandedTraceState(const System& system, const char* context) {
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const BackTracer& bt = system.site(s).back_tracer();
    EXPECT_EQ(bt.active_frames(), 0u) << context << ": site " << s;
    EXPECT_EQ(bt.visit_record_count(), 0u) << context << ": site " << s;
    EXPECT_EQ(bt.parked_call_count(), 0u) << context << ": site " << s;
  }
  EXPECT_EQ(system.network().in_flight(), 0u) << context;
}

/// Post-chaos recovery: rounds (with periodic clock advances so lazy
/// report-timeout expiry can run) until the world is garbage-free and no
/// trace state is stranded. Safety is checked after every round.
void RecoverUntilClean(System& system, std::size_t max_rounds) {
  const SimTime expiry = system.site(0).config().report_timeout +
                         system.site(0).config().back_call_timeout + 10;
  for (std::size_t i = 0; i < max_rounds; ++i) {
    system.RunRound();
    ASSERT_TRUE(system.CheckSafety().empty())
        << "round " << i << ": " << system.CheckSafety();
    if (system.CheckCompleteness().empty() && NoStrandedTraceState(system)) {
      return;
    }
    if (i % 8 == 7) system.AdvanceTime(expiry);
  }
}

// --- Reliable-channel equivalence (satellite: drop_probability > 0) --------

/// The worlds the equivalence runs are built on: two garbage rings plus a
/// rooted ring that must survive.
struct EquivalenceWorld {
  std::vector<ObjectId> garbage;
  std::vector<ObjectId> live;
};

EquivalenceWorld BuildEquivalenceWorld(System& system) {
  EquivalenceWorld world;
  const auto small_ring = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  const auto big_ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 2, .first_site = 0});
  const auto live_ring = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 1, .first_site = 1});
  const ObjectId tether =
      workload::TetherToRoot(system, live_ring.head(), /*root_site=*/0);
  world.garbage = small_ring.objects;
  world.garbage.insert(world.garbage.end(), big_ring.objects.begin(),
                       big_ring.objects.end());
  world.live = live_ring.objects;
  world.live.push_back(tether);
  return world;
}

struct EquivalenceOutcome {
  std::vector<bool> garbage_exists;
  std::vector<bool> live_exists;
  std::uint64_t reclaimed = 0;
  std::uint64_t garbage_verdicts = 0;
};

EquivalenceOutcome RunEquivalenceSchedule(double drop_probability,
                                          std::uint64_t seed) {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  // Explicit (identical) timeouts in both runs: generous enough that a loss
  // repaired by a few retransmissions never converts into a spurious Live.
  config.back_call_timeout = 600;
  config.report_timeout = 5000;
  config.update_refresh_period = 3;
  NetworkConfig net;
  net.latency = 10;
  net.reliable_delivery = true;
  net.drop_probability = drop_probability;
  System system(4, config, net, seed);
  const EquivalenceWorld world = BuildEquivalenceWorld(system);

  // Fixed schedule, identical in both runs.
  system.RunRounds(14);
  system.AdvanceTime(config.report_timeout + 1);
  system.RunRounds(4);

  EXPECT_TRUE(system.CheckSafety().empty())
      << "drop " << drop_probability << ": " << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "drop " << drop_probability << ": " << system.CheckCompleteness();
  if (drop_probability > 0.0) {
    // The loss actually happened, and retransmission repaired all of it.
    EXPECT_GT(system.network().stats().transmissions_lost, 0u);
    EXPECT_GT(system.network().stats().retransmits, 0u);
    EXPECT_EQ(system.network().stats().dropped, 0u);
  }
  ExpectNoStrandedTraceState(system, "equivalence");

  EquivalenceOutcome outcome;
  for (const ObjectId id : world.garbage) {
    outcome.garbage_exists.push_back(system.ObjectExists(id));
  }
  for (const ObjectId id : world.live) {
    outcome.live_exists.push_back(system.ObjectExists(id));
  }
  outcome.reclaimed = system.TotalObjectsReclaimed();
  outcome.garbage_verdicts =
      system.AggregateBackTracerStats().traces_completed_garbage;
  return outcome;
}

TEST(ReliableEquivalence, LossyRunConvergesToLosslessOutcome) {
  const EquivalenceOutcome lossless = RunEquivalenceSchedule(0.0, 11);
  const EquivalenceOutcome lossy = RunEquivalenceSchedule(0.10, 11);

  // The lossless run collects all garbage and keeps all live objects; the
  // lossy run must land on exactly the same heap.
  for (const bool exists : lossless.garbage_exists) EXPECT_FALSE(exists);
  for (const bool exists : lossless.live_exists) EXPECT_TRUE(exists);
  EXPECT_EQ(lossy.garbage_exists, lossless.garbage_exists);
  EXPECT_EQ(lossy.live_exists, lossless.live_exists);
  EXPECT_EQ(lossy.reclaimed, lossless.reclaimed);
  EXPECT_EQ(lossy.garbage_verdicts, lossless.garbage_verdicts);
}

// --- Scripted plans --------------------------------------------------------

// A long site outage across the only path a back trace can take: the trace
// must park its remote step on the suspected site instead of burning a
// timeout, then resume and complete Garbage when the failure detector
// reports the heal.
TEST(ScriptedChaos, BackTraceParksAcrossOutageAndResumesOnHeal) {
  CollectorConfig config;
  config.estimated_cycle_length = 16;  // wide suspected-but-not-traced band
  // Far beyond the heal notification: no timeout can preempt the parked
  // step, so the trace's only way forward is the resume path.
  config.back_call_timeout = 200'000;
  config.report_timeout = 500'000;
  config.update_refresh_period = 3;
  NetworkConfig net;
  net.latency = 5;
  net.reliable_delivery = true;
  net.heartbeat_period = 25'000;  // suspicion lingers long after the heal
  net.heartbeat_timeout = 100;    // ... and sets in quickly
  System system(4, config, net, 5);

  const auto ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 1, .first_site = 0});
  std::vector<ObjectId> live;
  for (SiteId s = 0; s < 4; ++s) {
    const ObjectId obj = system.NewObject(s, 1);
    system.SetPersistentRoot(obj);
    live.push_back(obj);
  }

  FaultPlan plan;
  plan.DropBurst(/*at=*/50, /*duration=*/300, /*drop_probability=*/0.4)
      .LinkFlap(/*at=*/80, /*a=*/0, /*b=*/1, /*duration=*/150)
      .SiteOutage(/*at=*/100, /*site=*/2, /*duration=*/600);
  system.ArmFaultPlan(plan);

  // A few waves inside the chaos window (their messages ride the drop burst
  // and the outage, exercising retransmission), then steady waves after the
  // heal at t=700 — all well inside the lingering-suspicion window of
  // heal + heartbeat_period, where distance growth resumes, the ring's
  // distances cross the back threshold, and the trace that starts must park
  // its step into site 2.
  ScheduleTraceWaves(system, /*start=*/60, /*waves=*/3, /*spacing=*/250,
                     /*stagger=*/20);
  ScheduleTraceWaves(system, /*start=*/750, /*waves=*/25, /*spacing=*/250,
                     /*stagger=*/20);
  system.SettleNetwork();

  const BackTracerStats bt = system.AggregateBackTracerStats();
  EXPECT_GE(bt.calls_parked, 1u) << "no remote step parked on the outage";
  EXPECT_EQ(bt.calls_unparked, bt.calls_parked);
  EXPECT_GE(bt.traces_completed_garbage, 1u);
  EXPECT_EQ(bt.timeouts, 0u);
  const NetworkStats& stats = system.network().stats();
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.transmissions_lost, 0u);
  EXPECT_GE(stats.fd_suspicions, 1u);
  EXPECT_GE(stats.fd_recoveries, 1u);

  // The verdict's flags sweep at the next local traces.
  system.RunRounds(4);
  for (const ObjectId id : ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  for (const ObjectId id : live) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty()) << system.CheckCompleteness();
  ExpectNoStrandedTraceState(system, "parked-resume");
}

// A crash-restart (volatile collector state lost, incarnation bumped) in the
// middle of a drop burst and a link flap: stale pre-crash traffic must be
// rejected, and the collection must still converge after the faults heal.
TEST(ScriptedChaos, CrashRestartMidCollectionRecovers) {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.update_refresh_period = 3;
  NetworkConfig net;
  net.latency = 5;
  net.latency_jitter = 6;
  net.reliable_delivery = true;
  net.heartbeat_period = 20;
  net.heartbeat_timeout = 80;
  System system(4, config, net, 7);

  const auto ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 2, .first_site = 0});
  const auto live_ring = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 1, .first_site = 1});
  const ObjectId tether =
      workload::TetherToRoot(system, live_ring.head(), /*root_site=*/0);

  FaultPlan plan;
  plan.DropBurst(/*at=*/100, /*duration=*/400, /*drop_probability=*/0.5)
      .SiteOutage(/*at=*/200, /*site=*/1, /*duration=*/400,
                  /*crash_restart=*/true)
      .LinkFlap(/*at=*/700, /*a=*/2, /*b=*/3, /*duration=*/200)
      .LatencySpike(/*at=*/900, /*duration=*/300, /*extra_latency=*/40);
  system.ArmFaultPlan(plan);

  ScheduleTraceWaves(system, /*start=*/50, /*waves=*/26, /*spacing=*/150,
                     /*stagger=*/15);
  system.SettleNetwork();
  ASSERT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();

  RecoverUntilClean(system, /*max_rounds=*/60);

  EXPECT_EQ(system.network().incarnation(1), 1u);
  EXPECT_GT(system.network().stats().retransmits, 0u);
  EXPECT_GE(system.network().stats().fd_suspicions, 1u);
  for (const ObjectId id : ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  for (const ObjectId id : live_ring.objects) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(tether));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty()) << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  ExpectNoStrandedTraceState(system, "crash-restart");
}

// --- Random chaos soak -----------------------------------------------------

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, SafetyAlwaysLivenessOnceHealed) {
  const std::uint64_t seed = GetParam();
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.back_threshold_increment = 3;
  config.update_refresh_period = 3;
  NetworkConfig net;
  net.latency = 5;
  net.latency_jitter = 8;
  net.batch_window = 4;
  net.drop_probability = 0.01;  // ambient loss on top of the plan's bursts
  net.reliable_delivery = true;
  net.heartbeat_period = 30;
  net.heartbeat_timeout = 120;
  System system(5, config, net, seed);

  const auto small_ring = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  const auto big_ring = workload::BuildCycle(
      system, {.sites = 5, .objects_per_site = 2, .first_site = 0});
  const auto live_ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 1, .first_site = 1});
  const ObjectId tether =
      workload::TetherToRoot(system, live_ring.head(), /*root_site=*/0);

  Rng chaos_rng(seed * 7919 + 1);
  FaultPlan::RandomSpec spec;
  spec.sites = 5;
  spec.horizon = 3000;
  const FaultPlan plan = FaultPlan::Random(chaos_rng, spec);
  ASSERT_FALSE(plan.empty());
  system.ArmFaultPlan(plan);

  // Collection attempts throughout the plan's horizon and beyond, armed up
  // front so faults land in the middle of live protocol traffic.
  ScheduleTraceWaves(system, /*start=*/100, /*waves=*/31, /*spacing=*/150,
                     /*stagger=*/9);
  system.SettleNetwork();
  ASSERT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();

  RecoverUntilClean(system, /*max_rounds=*/80);

  for (const ObjectId id : small_ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << "seed " << seed << " " << id;
  }
  for (const ObjectId id : big_ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << "seed " << seed << " " << id;
  }
  for (const ObjectId id : live_ring.objects) {
    EXPECT_TRUE(system.ObjectExists(id)) << "seed " << seed << " " << id;
  }
  EXPECT_TRUE(system.ObjectExists(tether)) << "seed " << seed;
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << "seed " << seed << ": " << system.CheckReferentialIntegrity();
  ExpectNoStrandedTraceState(system, "soak");
  EXPECT_GT(system.network().stats().retransmits, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace dgc
