// Property tests driving the transactional churn workload: sustained
// fetch/write/commit activity with interleaved collection must preserve
// safety at every step and reach a garbage-free quiescent state, across
// many seeds, network shapes, and collector configurations.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/churn.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  return config;
}

class TransactionalChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransactionalChurn, SafeAndEventuallyComplete) {
  const std::uint64_t seed = GetParam();
  NetworkConfig net;
  net.latency = 6;
  net.latency_jitter = 6;
  System system(4, Config(), net, seed);
  workload::ChurnDriver driver(system, Rng(seed * 2654435761ULL));
  workload::ChurnSpec spec;
  spec.steps = 50;
  driver.Run(spec);  // checks safety after every step internally
  EXPECT_NO_THROW(driver.Quiesce());
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << system.CheckLocalSafetyInvariant();
  // Something actually happened.
  const auto& stats = driver.stats();
  EXPECT_GT(stats.publishes + stats.unlinks + stats.crosslinks + stats.weaves,
            0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransactionalChurn,
                         ::testing::Range<std::uint64_t>(1, 21));

class ChurnWithPiggybacking : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ChurnWithPiggybacking, BatchedNetworkChangesNothingSemantically) {
  const std::uint64_t seed = GetParam();
  NetworkConfig net;
  net.latency = 6;
  net.batch_window = 8;  // piggybacking on
  System system(3, Config(), net, seed);
  workload::ChurnDriver driver(system, Rng(seed * 40503));
  workload::ChurnSpec spec;
  spec.steps = 40;
  driver.Run(spec);
  EXPECT_NO_THROW(driver.Quiesce());
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  // Piggybacking actually engaged.
  EXPECT_LT(system.network().stats().wire_messages,
            system.network().stats().inter_site_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnWithPiggybacking,
                         ::testing::Range<std::uint64_t>(1, 11));

class ChurnNonAtomicTraces : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ChurnNonAtomicTraces, SlowTracesUnderTransactionalChurn) {
  const std::uint64_t seed = GetParam();
  CollectorConfig config = Config();
  config.local_trace_duration = 40;
  NetworkConfig net;
  net.latency = 6;
  System system(3, config, net, seed);
  workload::ChurnDriver driver(system, Rng(seed * 7577));
  workload::ChurnSpec spec;
  spec.steps = 40;
  spec.rounds_every = 4;
  driver.Run(spec);
  EXPECT_NO_THROW(driver.Quiesce());
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnNonAtomicTraces,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ChurnDriverTest, StatsAccumulateAcrossRuns) {
  System system(2, Config());
  workload::ChurnDriver driver(system, Rng(5));
  workload::ChurnSpec spec;
  spec.steps = 20;
  driver.Run(spec);
  const auto first =
      driver.stats().publishes + driver.stats().unlinks +
      driver.stats().crosslinks + driver.stats().weaves;
  EXPECT_EQ(first, 20u);
  driver.Run(spec);
  const auto second =
      driver.stats().publishes + driver.stats().unlinks +
      driver.stats().crosslinks + driver.stats().weaves;
  EXPECT_EQ(second, 40u);
}

}  // namespace
}  // namespace dgc
