// Unit tests for the common substrate: ids, distance arithmetic, RNG, checks.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/distance.h"
#include "common/ids.h"
#include "common/rng.h"

namespace dgc {
namespace {

TEST(ObjectIdTest, DefaultIsInvalid) {
  ObjectId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, kInvalidObject);
}

TEST(ObjectIdTest, EqualityAndOrdering) {
  const ObjectId a{1, 5};
  const ObjectId b{1, 6};
  const ObjectId c{2, 1};
  EXPECT_EQ(a, (ObjectId{1, 5}));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(ObjectIdTest, HashDistinguishesSiteAndIndex) {
  std::unordered_set<ObjectId> set;
  for (SiteId s = 0; s < 8; ++s) {
    for (std::uint64_t i = 0; i < 64; ++i) set.insert(ObjectId{s, i});
  }
  EXPECT_EQ(set.size(), 8u * 64u);
}

TEST(ObjectIdTest, Streaming) {
  std::ostringstream os;
  os << ObjectId{3, 42};
  EXPECT_EQ(os.str(), "obj(s3:42)");
}

TEST(TraceIdTest, UniquePerInitiatorAndSeq) {
  std::unordered_set<TraceId> set;
  for (SiteId s = 0; s < 4; ++s) {
    for (std::uint32_t q = 0; q < 16; ++q) set.insert(TraceId{s, q});
  }
  EXPECT_EQ(set.size(), 4u * 16u);
  EXPECT_FALSE(TraceId{}.valid());
  EXPECT_TRUE((TraceId{0, 0}).valid());
}

TEST(DistanceTest, NextDistanceSaturates) {
  EXPECT_EQ(NextDistance(0), 1u);
  EXPECT_EQ(NextDistance(41), 42u);
  EXPECT_EQ(NextDistance(kDistanceInfinity), kDistanceInfinity);
  EXPECT_EQ(NextDistance(kDistanceInfinity - 1), kDistanceInfinity);
}

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(DGC_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    DGC_CHECK_MSG(false, "ioref " << 7);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("common_test.cc"), std::string::npos);
    EXPECT_NE(what.find("ioref 7"), std::string::npos);
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(21);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.Next() == b.Next());
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace dgc
