// Concurrency tests (Section 6): transfer/insert barriers racing back traces
// and local traces, the clean rule, non-atomic local tracing with
// double-buffered back information, the Figure 5/6 problem cases, and the
// determinism of parallel per-site trace computation.
#include <gtest/gtest.h>

#include <sstream>

#include "core/parallel_trace.h"
#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"
#include "workload/figures.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 3;
  return config;
}

// Builds the "rescue race" world: a suspected two-site cycle {p@0, q@1}
// kept alive only by a long multi-hop path from a root, which a mutator is
// about to replace with a short new reference. This is the general shape of
// Figures 5/6: if the back trace misses the new reference but sees the old
// path deleted, it would wrongly condemn the live cycle.
struct RescueWorld {
  ObjectId p, q;          // the suspected live cycle
  ObjectId anchor;        // rooted object at site 2 with a free slot
  ObjectId root;          // persistent root of the old path
  ObjectId h2;            // mid-path hop at site 1
  ObjectId h3;            // mid-path hop at site 2; unwire slot 0 to cut
  ObjectId last_hop;      // final link (h4); unwire slot 0 to cut at the end
};

RescueWorld BuildRescueWorld(System& system) {
  RescueWorld w;
  w.p = system.NewObject(0, 1);
  w.q = system.NewObject(1, 1);
  system.Wire(w.p, 0, w.q);
  system.Wire(w.q, 0, w.p);
  // Old path: root@2 -> h1@0 -> h2@1 -> h3@2 -> h4@0 -> p, so p's distance
  // is ~4 and the cycle's iorefs become suspected while genuinely live.
  const ObjectId root = system.NewObject(2, 1);
  system.SetPersistentRoot(root);
  const ObjectId h1 = system.NewObject(0, 1);
  const ObjectId h2 = system.NewObject(1, 1);
  const ObjectId h3 = system.NewObject(2, 1);
  const ObjectId h4 = system.NewObject(0, 1);
  system.Wire(root, 0, h1);
  system.Wire(h1, 0, h2);
  system.Wire(h2, 0, h3);
  system.Wire(h3, 0, h4);
  system.Wire(h4, 0, w.p);
  w.root = root;
  w.h2 = h2;
  w.h3 = h3;
  w.last_hop = h4;
  // Rooted anchor with a spare slot for the rescuing reference.
  w.anchor = system.NewObject(2, 1);
  system.SetPersistentRoot(w.anchor);
  return w;
}

TEST(RescueRaceTest, BarriersKeepRescuedCycleSafe) {
  // The mutator, via the real RPC path (all barriers firing), copies a
  // reference to q into the rooted anchor and then the old path is cut.
  // Whatever back traces run concurrently, the cycle must survive.
  NetworkConfig net;
  net.latency = 25;  // slow enough for traces and mutations to interleave
  System system(3, Config(), net);
  RescueWorld w = BuildRescueWorld(system);
  system.RunRounds(6);  // distances ripen: cycle iorefs suspected
  ASSERT_FALSE(system.site(1)
                   .tables()
                   .FindInref(w.q)
                   ->clean(system.site(1).config().suspicion_threshold));

  Session session(system, 2, 1);
  session.LoadRoot(w.anchor);
  // Mutator reaches p (traversal of the old path's last hop): obtaining the
  // reference runs §6.1.2 case 4 at the home site and the transfer barrier
  // at p's owner.
  session.LoadRoot(w.p);
  bool got_q = false;
  // Obtain ref to q by reading p.slots[0] remotely — through the RPC path.
  ObjectId q_ref = kInvalidObject;
  session.StartRead(w.p, 0, [&](ObjectId value) {
    q_ref = value;
    got_q = true;
  });
  // While the read is in flight, back traces may be starting; let a round of
  // traces fire concurrently.
  system.site(0).StartLocalTrace();
  system.site(1).StartLocalTrace();
  system.SettleNetwork();
  ASSERT_TRUE(got_q);
  ASSERT_EQ(q_ref, w.q);

  // Publish the rescue, then cut the old path.
  session.Write(w.anchor, 0, w.q);
  session.ReleaseAll();
  system.Unwire(w.last_hop, 0);

  system.RunRounds(20);
  EXPECT_TRUE(system.ObjectExists(w.p));
  EXPECT_TRUE(system.ObjectExists(w.q));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  // Everything left is reachable (the hops stay rooted; the cycle hangs off
  // the anchor): the world is garbage-free.
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

TEST(RescueRaceTest, WithoutBarriersTheRaceIsActuallyDangerous) {
  // Counterfactual proving the barriers above are load-bearing: the same
  // rescue performed with god-mode wiring (no barriers, no clean rule hook)
  // while a back trace is mid-flight. The trace walks stale back
  // information, meets the deleted mid-path edge, wrongly condemns the
  // *live* (anchored) cycle, and the safety oracle reports the violation —
  // the precise §6.4 hazard the paper's machinery exists to prevent.
  CollectorConfig config = Config();
  config.suspicion_threshold = 2;  // hops h3/h4 suspected: no clean rescue
  config.enable_back_tracing = false;  // we drive the single trace by hand
  NetworkConfig net;
  net.latency = 30;
  System system(3, config, net);
  RescueWorld w = BuildRescueWorld(system);
  system.RunRounds(6);

  // The back trace from site 0's outref to q departs...
  Site& site0 = system.site(0);
  ASSERT_NE(site0.tables().FindOutref(w.q), nullptr);
  bool completed = false;
  BackResult outcome = BackResult::kLive;
  site0.back_tracer().set_outcome_observer([&](const TraceOutcome& result) {
    completed = true;
    outcome = result.result;
  });
  site0.back_tracer().StartTrace(w.q);
  system.scheduler().RunUntil(system.scheduler().now() + 5);

  // ...and immediately afterwards the mutator rescues q with a *local copy*
  // (§6.1.1's tricky case: no ioref state changes at all) into a rooted
  // object on q's own site, skipping the case-1 transfer barrier a real
  // arrival would have fired. Then the edge h3 -> h4 is deleted at site 2,
  // whose local trace trims its outref for h4 — the Figure 5 pattern: the
  // copy's site (1) keeps stale back information while the deletion's site
  // (2) refreshes.
  const ObjectId local_anchor = system.NewObject(1, 1);
  system.SetPersistentRoot(local_anchor);
  system.site(1).heap().SetSlot(local_anchor, 0, w.q);  // no barrier!
  system.Unwire(w.h3, 0);
  system.site(2).StartLocalTrace();

  system.SettleNetwork();
  ASSERT_TRUE(completed);
  // The trace saw only suspected/deleted iorefs: wrongly Garbage.
  EXPECT_EQ(outcome, BackResult::kGarbage);
  system.RunRounds(3);  // flagged inrefs are swept
  // q survives (directly under the new root) but the rest of its cycle is
  // wrongly reclaimed out from under it: p is gone while live q holds it.
  EXPECT_FALSE(system.ObjectExists(w.p));
  EXPECT_TRUE(system.ObjectExists(w.q));
  const std::string violation = system.CheckSafety();
  EXPECT_FALSE(violation.empty())
      << "expected the oracle to catch the unsafe collection";
}

// --- Clean rule (§6.4) --------------------------------------------------------

TEST(CleanRuleTest, CleaningIorefWithActiveTraceForcesLive) {
  NetworkConfig net;
  net.latency = 100;  // very slow: the trace will be parked mid-flight
  System system(3, Config(), net);
  RescueWorld w = BuildRescueWorld(system);
  system.RunRounds(6);

  Site& site0 = system.site(0);
  bool completed = false;
  BackResult outcome = BackResult::kGarbage;
  site0.back_tracer().set_outcome_observer([&](const TraceOutcome& result) {
    completed = true;
    outcome = result.result;
  });
  site0.back_tracer().StartTrace(w.q);
  // Let the trace become active at site 0's iorefs (self-steps run at +0,
  // the remote call to site 1 is in flight for 100 ticks).
  system.scheduler().RunUntil(system.scheduler().now() + 10);
  ASSERT_GT(site0.back_tracer().active_frames(), 0u);

  // A mutator transfer arrives for p: the barrier cleans inref p and its
  // outset (which includes the outref to q the trace started from). The
  // clean rule must force this trace Live regardless of what the other
  // branches conclude.
  site0.ApplyTransferBarrier(w.p);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kLive);
  EXPECT_GE(site0.back_tracer().stats().clean_rule_hits, 1u);
  // Live outcome: nothing flagged anywhere.
  for (SiteId s = 0; s < 3; ++s) {
    for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
      (void)obj;
      EXPECT_FALSE(entry.garbage_flagged);
    }
  }
}

TEST(CleanRuleTest, PinningOutrefWithActiveTraceForcesLive) {
  NetworkConfig net;
  net.latency = 100;
  System system(3, Config(), net);
  RescueWorld w = BuildRescueWorld(system);
  system.RunRounds(6);
  Site& site0 = system.site(0);
  BackResult outcome = BackResult::kGarbage;
  bool completed = false;
  site0.back_tracer().set_outcome_observer([&](const TraceOutcome& result) {
    completed = true;
    outcome = result.result;
  });
  site0.back_tracer().StartTrace(w.q);
  system.scheduler().RunUntil(system.scheduler().now() + 10);
  // A session variable takes hold of the reference to q at site 0 (e.g. the
  // mutator just received it): the pin transitions the outref to clean.
  site0.PinOutref(w.q);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kLive);
  site0.UnpinOutref(w.q);
}

// --- Non-atomic local tracing (§6.2) -------------------------------------------

TEST(NonAtomicTraceTest, BackTraceDuringTraceSeesOldCopy) {
  CollectorConfig config = Config();
  config.local_trace_duration = 200;
  config.enable_back_tracing = false;
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  // Ripen with several (non-overlapping) slow traces.
  for (int i = 0; i < 8; ++i) {
    system.site(0).StartLocalTrace();
    system.site(1).StartLocalTrace();
    system.SettleNetwork();
  }
  Site& site0 = system.site(0);
  const auto& old_insets = site0.back_info().outref_insets;
  ASSERT_FALSE(old_insets.empty());

  // Start a local trace; while it is in flight the site serves back steps
  // from the old copy.
  site0.StartLocalTrace();
  ASSERT_TRUE(site0.trace_in_flight());
  EXPECT_FALSE(site0.back_info().outref_insets.empty());
  bool completed = false;
  BackResult outcome = BackResult::kLive;
  site0.back_tracer().set_outcome_observer([&](const TraceOutcome& result) {
    completed = true;
    outcome = result.result;
  });
  site0.back_tracer().StartTrace(cycle.objects[1]);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kGarbage);
  EXPECT_FALSE(site0.trace_in_flight());
}

TEST(NonAtomicTraceTest, BarrierDuringTraceWindowIsRemembered) {
  CollectorConfig config = Config();
  config.local_trace_duration = 200;
  config.enable_back_tracing = false;
  System system(3, config);
  RescueWorld w = BuildRescueWorld(system);
  for (int i = 0; i < 6; ++i) {
    for (SiteId s = 0; s < 3; ++s) system.site(s).StartLocalTrace();
    system.SettleNetwork();
  }
  Site& site0 = system.site(0);
  InrefEntry* inref_p = site0.tables().FindInref(w.p);
  ASSERT_NE(inref_p, nullptr);
  ASSERT_FALSE(inref_p->clean(config.suspicion_threshold));

  // Open a trace window and apply the barrier inside it.
  site0.StartLocalTrace();
  ASSERT_TRUE(site0.trace_in_flight());
  site0.ApplyTransferBarrier(w.p);
  EXPECT_TRUE(inref_p->clean(config.suspicion_threshold));
  OutrefEntry* outref_q = site0.tables().FindOutref(w.q);
  ASSERT_NE(outref_q, nullptr);
  EXPECT_TRUE(outref_q->clean());  // cleaned via old copy's outset

  // When the trace applies, the remembered cleaning must survive the swap
  // (it would otherwise be wiped by step 1 of ApplyTraceResult) and be
  // re-applied against the new copy.
  system.SettleNetwork();
  EXPECT_FALSE(site0.trace_in_flight());
  EXPECT_TRUE(inref_p->clean(config.suspicion_threshold));
  EXPECT_TRUE(outref_q->clean());

  // The following trace (no barrier in its window) reverts to suspicion.
  site0.StartLocalTrace();
  system.SettleNetwork();
  EXPECT_FALSE(inref_p->clean(config.suspicion_threshold));
}

TEST(NonAtomicTraceTest, ObjectsAllocatedMidTraceSurviveTheSweep) {
  CollectorConfig config = Config();
  config.local_trace_duration = 200;
  System system(1, config);
  const ObjectId dead = system.NewObject(0, 0);
  Session session(system, 0, 1);
  system.site(0).StartLocalTrace();
  const ObjectId fresh = session.Create(0);  // allocated inside the window
  system.SettleNetwork();
  EXPECT_FALSE(system.ObjectExists(dead));
  EXPECT_TRUE(system.ObjectExists(fresh));
}

// --- Figures 5 and 6 end-to-end -------------------------------------------------

class Figure5Plus6 : public ::testing::TestWithParam<bool> {};

TEST_P(Figure5Plus6, MutationRaceNeverKillsLiveObjects) {
  // Drive the figure's mutation (create y->z, delete d->e) through the real
  // mutator/barrier machinery at many different trace/mutation timings; no
  // interleaving may violate safety, and the garbage that results from the
  // deletion must eventually be collected.
  const bool second_source = GetParam();
  for (SimTime mutation_delay = 0; mutation_delay <= 240;
       mutation_delay += 40) {
    NetworkConfig net;
    net.latency = 30;
    System system(4, Config(), net);
    const auto w = workload::BuildFigure5(system, second_source);
    system.RunRounds(5);  // e, f, g (and z, x) become suspected

    // Session at Q holds z (it traversed the old path; the traversal's
    // final hop fired the transfer barrier at Q for inref f).
    Session session(system, 1, 1);
    system.site(1).ApplyTransferBarrier(w.f);
    session.Hold(w.z);
    session.Hold(w.b);

    // Kick local traces staggered so back traces may be mid-flight when the
    // mutation lands.
    system.RunRoundStaggered(15);
    system.scheduler().RunUntil(system.scheduler().now() + mutation_delay);

    // y -> z (local copy at Q: no barrier needed, variables are roots),
    // then delete d -> e at S.
    const ObjectId y = w.y;
    system.site(1).heap().SetSlot(y, 0, w.z);
    system.Unwire(w.d, 0);
    session.ReleaseAll();

    system.RunRounds(20);
    // Live: a, b, y, z, g, c, d (all reachable from root a).
    for (const ObjectId id : {w.a, w.b, w.y, w.z, w.g, w.c, w.d}) {
      EXPECT_TRUE(system.ObjectExists(id))
          << "delay " << mutation_delay << " second_source " << second_source;
    }
    // Garbage: e, f, x (the old path's tail).
    for (const ObjectId id : {w.e, w.f, w.x}) {
      EXPECT_FALSE(system.ObjectExists(id))
          << "delay " << mutation_delay << " second_source " << second_source;
    }
    EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  }
}

INSTANTIATE_TEST_SUITE_P(Fig5AndFig6, Figure5Plus6, ::testing::Bool());

// --- Parallel per-site trace computation -----------------------------------

// Serializes every semantic field of a TraceResult (everything except the
// wall-clock timing, which legitimately varies run to run). Two results are
// "byte-identical" when these dumps match.
std::string DumpTraceResult(const TraceResult& r) {
  std::ostringstream os;
  os << "epoch " << r.epoch << '\n';
  os << "snapshot_outrefs";
  for (const ObjectId id : r.snapshot_outrefs) os << ' ' << id;
  os << "\nsnapshot_inrefs";
  for (const ObjectId id : r.snapshot_inrefs) os << ' ' << id;
  os << "\noutref_distances";
  for (const auto& [id, d] : r.outref_distances) os << ' ' << id << '=' << d;
  os << "\noutrefs_clean";
  for (const ObjectId id : r.outrefs_clean) os << ' ' << id;
  os << "\noutrefs_untraced";
  for (const ObjectId id : r.outrefs_untraced) os << ' ' << id;
  os << "\nobjects_to_free";
  for (const ObjectId id : r.objects_to_free) os << ' ' << id;
  os << "\ninref_outsets";
  for (const auto& [inref, outset] : r.back_info.inref_outsets) {
    os << ' ' << inref << ":[";
    for (const ObjectId out : outset) os << out << ' ';
    os << ']';
  }
  os << "\noutref_insets";
  for (const auto& [outref, inset] : r.back_info.outref_insets) {
    os << ' ' << outref << ":[";
    for (const ObjectId in : inset) os << in << ' ';
    os << ']';
  }
  os << "\nstats " << r.stats.objects_marked_clean << ' '
     << r.stats.objects_marked_suspect << ' ' << r.stats.objects_swept << ' '
     << r.stats.edges_scanned_clean << ' ' << r.stats.suspect_objects_traced
     << ' ' << r.stats.suspect_edges_scanned << ' '
     << r.stats.suspected_inrefs << ' ' << r.stats.suspected_outrefs << ' '
     << r.stats.distinct_outsets << ' ' << r.stats.back_info_elements << '\n';
  return os.str();
}

// Builds the shared world used by the determinism checks: a suspected
// 4-site ring plus per-site live trees, ripened so that local traces
// exercise both the clean phase and the suspect (back-information) phase.
void BuildParallelWorld(System& system) {
  const auto cycle =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 2});
  (void)cycle;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const ObjectId root = system.NewObject(s, 3);
    system.SetPersistentRoot(root);
    for (std::size_t i = 0; i < 3; ++i) {
      const ObjectId child = system.NewObject(s, 1);
      system.Wire(root, i, child);
      system.Wire(child, 0, system.NewObject((s + 1) % system.site_count(), 0));
    }
  }
  system.RunRounds(5);  // distances ripen; the ring becomes suspected
}

TEST(ParallelTraceTest, FourThreadsMatchOneThreadByteForByte) {
  // Two identically seeded worlds; compute one round of traces with 1 worker
  // in one and 4 workers in the other. Every per-site TraceResult must be
  // byte-identical: the computations share no state, so thread count cannot
  // leak into the results.
  CollectorConfig config = Config();
  System sequential(4, config, {}, /*seed=*/7);
  System parallel(4, config, {}, /*seed=*/7);
  BuildParallelWorld(sequential);
  BuildParallelWorld(parallel);

  std::vector<Site*> seq_sites, par_sites;
  for (SiteId s = 0; s < 4; ++s) {
    seq_sites.push_back(&sequential.site(s));
    par_sites.push_back(&parallel.site(s));
  }
  ParallelTraceExecutor one(1);
  ParallelTraceExecutor four(4);
  const std::vector<TraceResult> seq_results = one.ComputeAll(seq_sites);
  const std::vector<TraceResult> par_results = four.ComputeAll(par_sites);
  ASSERT_EQ(seq_results.size(), par_results.size());
  for (std::size_t i = 0; i < seq_results.size(); ++i) {
    EXPECT_EQ(DumpTraceResult(seq_results[i]), DumpTraceResult(par_results[i]))
        << "site " << i << " diverged between 1 and 4 trace threads";
  }
  EXPECT_EQ(four.threads(), 4u);
  EXPECT_EQ(four.stats().traces_computed, 4u);
}

TEST(ParallelTraceTest, ParallelRoundsCollectTheCycleSafely) {
  // End-to-end: a system configured with trace_threads = 4 runs whole rounds
  // through the parallel compute + ordered merge path and must still collect
  // the distributed cycle without ever violating safety.
  CollectorConfig config = Config();
  config.trace_threads = 4;
  System system(4, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 1});
  system.RunRounds(25);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id << " leaked";
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty()) << system.CheckCompleteness();
}

TEST(ParallelTraceTest, ThreadCountDoesNotChangeRoundOutcomes) {
  // The parallel round path must be deterministic in everything but wall
  // time: 2-thread and 4-thread systems evolve identically.
  auto run = [](std::size_t threads) {
    CollectorConfig config = Config();
    config.trace_threads = threads;
    System system(4, config, {}, /*seed=*/11);
    BuildParallelWorld(system);
    system.RunRounds(15);
    std::ostringstream os;
    os << system.TotalObjects() << ' ' << system.TotalObjectsReclaimed() << ' '
       << system.network().stats().inter_site_sent << ' '
       << system.scheduler().now();
    return os.str();
  };
  EXPECT_EQ(run(2), run(4));
}

}  // namespace
}  // namespace dgc
