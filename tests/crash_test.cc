// Crash-restart tests: a site loses its volatile state (frames, visit
// records, pins, in-flight trace, continuations) but keeps its persistent
// store (heap, tables, back info). The rest of the system recovers through
// timeouts, report expiry, and recovery-time re-registration.
#include <gtest/gtest.h>

#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_call_timeout = 400;
  config.report_timeout = 3000;
  return config;
}

TEST(CrashRestartTest, PersistentStateSurvives) {
  System system(2, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 2});
  const ObjectId tether = workload::TetherToRoot(system, cycle.head(), 0);
  system.RunRounds(3);
  const std::size_t objects = system.site(0).heap().object_count();
  const std::size_t inrefs = system.site(0).tables().inrefs().size();
  const std::size_t back_info_elements =
      system.site(0).back_info().stored_elements();
  system.site(0).CrashRestart();
  system.SettleNetwork();
  EXPECT_EQ(system.site(0).heap().object_count(), objects);
  EXPECT_EQ(system.site(0).tables().inrefs().size(), inrefs);
  // Back information is persistent too: unchanged by the restart.
  EXPECT_EQ(system.site(0).back_info().stored_elements(), back_info_elements);
  (void)tether;
}

TEST(CrashRestartTest, MidTraceCrashRecoversViaTimeouts) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;  // traces driven by hand below
  NetworkConfig net;
  net.latency = 50;
  System system(3, config, net);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 1});
  system.RunRounds(12);  // ripen

  // Start a trace by hand, let it reach site 1, then crash site 1.
  Site& initiator = system.site(0);
  bool completed = false;
  BackResult outcome = BackResult::kGarbage;
  initiator.back_tracer().set_outcome_observer(
      [&](const TraceOutcome& result) {
        completed = true;
        outcome = result.result;
      });
  initiator.back_tracer().StartTrace(
      initiator.tables().outrefs().begin()->first);
  system.scheduler().RunUntil(system.scheduler().now() + 120);
  system.site(1).CrashRestart();  // frames on site 1 vanish
  system.SettleNetwork();
  // The initiator's pending branch timed out: safely Live.
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kLive);
  // No stale visited marks anywhere (restart scrubbed site 1; the Live
  // report or record expiry cleans the others).
  system.AdvanceTime(5000);
  system.RunRound();
  for (SiteId s = 0; s < 3; ++s) {
    for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
      EXPECT_TRUE(entry.visited.empty()) << "site " << s << " " << obj;
    }
  }
  // A retried trace (everything healthy again) collects the cycle.
  system.RunRounds(3);
  completed = false;
  initiator.back_tracer().StartTrace(
      initiator.tables().outrefs().begin()->first);
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  EXPECT_EQ(outcome, BackResult::kGarbage);
  system.RunRounds(3);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
}

TEST(CrashRestartTest, MidLocalTraceCrashDiscardsPendingResult) {
  CollectorConfig config = Config();
  config.local_trace_duration = 200;
  System system(2, config);
  const ObjectId obj = system.NewObject(0, 0);
  system.SetPersistentRoot(obj);
  const ObjectId dead = system.NewObject(0, 0);
  system.site(0).StartLocalTrace();
  ASSERT_TRUE(system.site(0).trace_in_flight());
  system.site(0).CrashRestart();
  EXPECT_FALSE(system.site(0).trace_in_flight());
  EXPECT_NO_THROW(system.SettleNetwork());  // stale apply event is discarded
  EXPECT_TRUE(system.ObjectExists(dead));   // that trace never applied
  system.site(0).StartLocalTrace();
  system.SettleNetwork();
  EXPECT_FALSE(system.ObjectExists(dead));  // a fresh trace works
}

TEST(CrashRestartTest, SessionsDieAndTheirGarbageIsCollected) {
  System system(2, Config());
  auto session = std::make_unique<Session>(system, 0, 1);
  const ObjectId local_held = session->Create(1);
  const ObjectId remote = system.NewObject(1, 0);
  workload::TetherToRoot(system, remote, 1);
  session->LoadRoot(remote);  // pinned at site 0
  system.RunRounds(2);
  EXPECT_TRUE(system.ObjectExists(local_held));

  system.site(0).CrashRestart();  // app roots and pins vanish
  // The session's holds died with the site; releasing them would unpin twice.
  session->Abandon();
  session.reset();
  system.RunRounds(4);
  EXPECT_FALSE(system.ObjectExists(local_held));  // no app root anymore
  EXPECT_TRUE(system.ObjectExists(remote));       // still tethered at 1
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(CrashRestartTest, ReRegistrationHealsLostInserts) {
  NetworkConfig net;
  net.latency = 50;
  System system(2, Config(), net);
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 1);
  // Site 0 receives the reference; the insert message is lost because site 1
  // is unreachable at that moment.
  system.network().SetSiteDown(1, true);
  bool done = false;
  system.site(0).ReceiveReference(obj, [&] { done = true; });
  system.SettleNetwork();
  EXPECT_FALSE(done);  // ack never came
  // Wire the reference into a rooted holder at site 0 anyway (god mode, as
  // if it had been stored before the crash was noticed).
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.site(0).heap().SetSlot(holder, 0, obj);
  // The owner has no inref at all (the tether is local to site 1 and the
  // insert never arrived).
  EXPECT_EQ(system.site(1).tables().FindInref(obj), nullptr);
  // Site 0 crashes and restarts after connectivity returns: re-registration
  // repairs the source list.
  system.network().SetSiteDown(1, false);
  system.site(0).CrashRestart();
  system.SettleNetwork();
  const InrefEntry* inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(0));
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
}

TEST(CrashRestartTest, ReRegistrationToCondemnedInrefIsIgnored) {
  // The sender was down while a back trace condemned the object; its
  // recovery re-registration must not resurrect the flagged inref.
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.Wire(holder, 0, obj);  // holder itself is garbage at site 0
  InrefEntry* inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  inref->garbage_flagged = true;

  system.site(0).CrashRestart();  // re-registers its outref for obj
  system.SettleNetwork();
  // Still flagged, source list not grown beyond the original entry.
  inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->garbage_flagged);
  // Collection completes: holder swept at 0, removal update empties the
  // source list, object swept at 1.
  system.RunRounds(4);
  EXPECT_FALSE(system.ObjectExists(obj));
  EXPECT_FALSE(system.ObjectExists(holder));
}

TEST(CrashRestartTest, CrashDropsCachedVerdicts) {
  // The verdict cache is volatile: after a restart no stale verdict may
  // suppress a fresh trace (the tables it summarized were rebuilt around it).
  CollectorConfig config = Config();
  config.enable_back_tracing = false;  // trigger the one trace by hand
  System system(2, config);
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(12);
  Site& initiator = system.site(0);
  const ObjectId start = initiator.tables().outrefs().begin()->first;
  initiator.back_tracer().StartTrace(start);
  system.SettleNetwork();
  ASSERT_TRUE(initiator.back_tracer()
                  .verdict_cache()
                  .Peek(IorefKind::kOutref, start)
                  .has_value());
  initiator.CrashRestart();
  EXPECT_EQ(initiator.back_tracer().verdict_cache().size(), 0u);
  EXPECT_FALSE(initiator.back_tracer()
                   .verdict_cache()
                   .Peek(IorefKind::kOutref, start)
                   .has_value());
  EXPECT_GE(initiator.back_tracer().verdict_cache().stats().dropped, 1u);
}

}  // namespace
}  // namespace dgc
