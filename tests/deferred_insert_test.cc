// Tests for the deferred insert protocol (§2's "protocols for sending,
// deferring, or avoiding insert messages while ensuring safety"): operations
// complete immediately while the new outref's pin carries safety until the
// background registration is acknowledged.
#include <gtest/gtest.h>

#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig DeferredConfig() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.insert_mode = InsertMode::kDeferred;
  return config;
}

TEST(DeferredInsertTest, OwnerSentReferenceCompletesWithoutAckWait) {
  NetworkConfig net;
  net.latency = 50;
  System system(2, DeferredConfig(), net);
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 1);

  bool done = false;
  // The reference arrived from its own owner (sender == obj.site): the
  // fast path sends the insert ahead and completes immediately.
  system.site(0).ReceiveReference(obj, [&] { done = true; }, /*sender=*/1);
  EXPECT_TRUE(done);
  EXPECT_EQ(system.network().stats().count_of<InsertMsg>(), 1u);
  const OutrefEntry* outref = system.site(0).tables().FindOutref(obj);
  ASSERT_NE(outref, nullptr);
  EXPECT_EQ(outref->pin_count, 1);  // insert barrier retention until ack
  EXPECT_TRUE(outref->clean());

  system.SettleNetwork();
  EXPECT_EQ(outref->pin_count, 0);  // ack released it
  const InrefEntry* inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(0));
}

TEST(DeferredInsertTest, ThirdPartyReferenceStaysSynchronous) {
  NetworkConfig net;
  net.latency = 50;
  System system(3, DeferredConfig(), net);
  const ObjectId obj = system.NewObject(2, 0);
  workload::TetherToRoot(system, obj, 2);
  bool done = false;
  // Sender 1 is not the owner (2): the sound path is the ack wait.
  system.site(0).ReceiveReference(obj, [&] { done = true; }, /*sender=*/1);
  EXPECT_FALSE(done);
  system.SettleNetwork();
  EXPECT_TRUE(done);
}

TEST(DeferredInsertTest, PublishOwnObjectLatencyBeatsSynchronous) {
  // A session publishing its OWN object into a remote container: under
  // synchronous inserts the write waits for the owner's ack round trip;
  // under deferral the insert rides ahead of the write-ack on the same
  // channel and the operation completes a full round trip earlier.
  const auto measure = [](InsertMode mode) {
    CollectorConfig config = DeferredConfig();
    config.insert_mode = mode;
    NetworkConfig net;
    net.latency = 40;
    System system(2, config, net);
    const ObjectId container = system.NewObject(1, 1);
    workload::TetherToRoot(system, container, 1);
    Session session(system, 0, 1);
    session.LoadRoot(container);
    const ObjectId mine = session.Create(0);
    const SimTime before = system.scheduler().now();
    session.Write(container, 0, mine);
    const SimTime elapsed = system.scheduler().now() - before;
    system.SettleNetwork();
    // Either way, the registration must exist afterwards.
    const InrefEntry* inref = system.site(0).tables().FindInref(mine);
    EXPECT_NE(inref, nullptr);
    if (inref != nullptr) EXPECT_TRUE(inref->sources.contains(1));
    return elapsed;
  };
  const SimTime synchronous = measure(InsertMode::kSynchronous);
  const SimTime deferred = measure(InsertMode::kDeferred);
  EXPECT_LT(deferred, synchronous);
  // Exactly one owner round trip saved.
  EXPECT_GE(synchronous - deferred, 70);
}

TEST(DeferredInsertTest, FifoMakesRegistrationPrecedeCompletion) {
  // The soundness argument itself: when the write-ack arrives at the
  // session's home (= the value's owner), the insert must already have been
  // processed there.
  NetworkConfig net;
  net.latency = 40;
  System system(2, DeferredConfig(), net);
  const ObjectId container = system.NewObject(1, 1);
  workload::TetherToRoot(system, container, 1);
  Session session(system, 0, 1);
  session.LoadRoot(container);
  const ObjectId mine = session.Create(0);
  bool completed = false;
  session.StartWrite(container, 0, mine, [&] {
    completed = true;
    // At this instant the home site (owner of `mine`) must already list
    // site 1 as a source.
    const InrefEntry* inref = system.site(0).tables().FindInref(mine);
    ASSERT_NE(inref, nullptr);
    EXPECT_TRUE(inref->sources.contains(1));
  });
  system.SettleNetwork();
  EXPECT_TRUE(completed);
  // Safe to release right away — registration is in place.
  session.ReleaseAll();
  system.RunRounds(3);
  EXPECT_TRUE(system.ObjectExists(mine));  // reachable via the container
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(DeferredInsertTest, LostInsertIsResentWithNextTrace) {
  NetworkConfig net;
  net.latency = 5;
  System system(2, DeferredConfig(), net);
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 1);
  system.network().SetSiteDown(1, true);  // the immediate insert is lost
  bool done = false;
  system.site(0).ReceiveReference(obj, [&] { done = true; }, /*sender=*/1);
  EXPECT_TRUE(done);
  system.SettleNetwork();
  EXPECT_EQ(system.site(1).tables().FindInref(obj), nullptr);
  // Owner recovers; the next local trace at site 0 resends the insert.
  system.network().SetSiteDown(1, false);
  system.site(0).StartLocalTrace();
  system.SettleNetwork();
  const InrefEntry* inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(0));
  EXPECT_EQ(system.site(0).tables().FindOutref(obj)->pin_count, 0);
}

TEST(DeferredInsertTest, DuplicateAcksAreHarmless) {
  NetworkConfig net;
  net.latency = 60;  // flush delay (30) < latency: a resend races the ack
  System system(2, DeferredConfig(), net);
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 1);
  bool done = false;
  system.site(0).ReceiveReference(obj, [&] { done = true; }, /*sender=*/1);
  // Force an extra flush before the first ack returns: two inserts, two
  // acks; the pin must release exactly once.
  system.scheduler().RunUntil(system.scheduler().now() + 35);
  system.site(0).StartLocalTrace();  // flush #2 (entry still unacked)
  system.SettleNetwork();
  const OutrefEntry* outref = system.site(0).tables().FindOutref(obj);
  ASSERT_NE(outref, nullptr);
  EXPECT_EQ(outref->pin_count, 0);
  EXPECT_GE(system.network().stats().count_of<InsertAckMsg>(), 2u);
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
}

TEST(DeferredInsertTest, SafetyUnderDeferredChurn) {
  // The insert-barrier pin must keep deferred-mode mutator traffic safe.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CollectorConfig config = DeferredConfig();
    NetworkConfig net;
    net.latency = 12;
    System system(3, config, net, seed);
    std::vector<ObjectId> containers;
    for (SiteId s = 0; s < 3; ++s) {
      const ObjectId container = system.NewObject(s, 2);
      system.SetPersistentRoot(container);
      containers.push_back(container);
    }
    Rng rng(seed * 33);
    Session session(system, 0, 1);
    for (int step = 0; step < 30; ++step) {
      const ObjectId container = containers[rng.NextBelow(3)];
      if (!session.Holds(container)) session.LoadRoot(container);
      if (rng.NextBool(0.6)) {
        const ObjectId fresh = session.Create(0);
        session.Write(container, rng.NextBelow(2), fresh);
        session.Release(fresh);
      } else {
        session.Write(container, rng.NextBelow(2), kInvalidObject);
      }
      if (step % 5 == 4) system.RunRoundStaggered(5);
      ASSERT_TRUE(system.CheckSafety().empty())
          << "seed " << seed << " step " << step << ": "
          << system.CheckSafety();
    }
    session.ReleaseAll();
    system.RunRounds(15);
    EXPECT_TRUE(system.CheckCompleteness().empty())
        << "seed " << seed << ": " << system.CheckCompleteness();
  }
}

}  // namespace
}  // namespace dgc
