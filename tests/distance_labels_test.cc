// Tests for incremental distance-label maintenance: the saturating distance
// arithmetic it leans on, the DistanceLabels repair engine driven directly
// against a raw heap (ripples, cone re-floors, recycling, budget blowouts,
// threshold breaches), a 10-seed mutation property test where a full forward
// propagation re-checks the maintained plane after EVERY step, and
// system-level twins proving the label-serving collector is observably
// bit-identical to the classic full trace — including under churn,
// incremental traces, parallel marking, and crash-restart fallbacks.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "common/distance.h"
#include "common/rng.h"
#include "core/inspect.h"
#include "core/metrics.h"
#include "core/system.h"
#include "localgc/distance_labels.h"
#include "mutator/session.h"
#include "store/heap.h"
#include "workload/builders.h"
#include "workload/churn.h"
#include "workload/figures.h"

namespace dgc {
namespace {

// --- Saturating distance arithmetic -----------------------------------------

TEST(DistanceArithmeticTest, AddDistanceSaturatesInsteadOfWrapping) {
  EXPECT_EQ(AddDistance(2, 3), 5u);
  EXPECT_EQ(AddDistance(0, 0), 0u);
  EXPECT_EQ(AddDistance(kDistanceInfinity, 1), kDistanceInfinity);
  EXPECT_EQ(AddDistance(kDistanceInfinity, kDistanceInfinity),
            kDistanceInfinity);
  EXPECT_EQ(AddDistance(kDistanceInfinity - 1, 1), kDistanceInfinity);
  EXPECT_EQ(AddDistance(kDistanceInfinity - 1, 2), kDistanceInfinity);
  EXPECT_EQ(AddDistance(1, kDistanceInfinity - 1), kDistanceInfinity);
  EXPECT_EQ(AddDistance(kDistanceInfinity - 2, 1), kDistanceInfinity - 1);
  // Saturation is sticky: once infinite, increments never wrap back down.
  Distance d = kDistanceInfinity - 3;
  for (int i = 0; i < 8; ++i) d = NextDistance(d);
  EXPECT_EQ(d, kDistanceInfinity);
}

TEST(DistanceArithmeticTest, NextDistanceMatchesAddByOne) {
  EXPECT_EQ(NextDistance(0), 1u);
  EXPECT_EQ(NextDistance(7), 8u);
  EXPECT_EQ(NextDistance(kDistanceInfinity), kDistanceInfinity);
  EXPECT_EQ(NextDistance(kDistanceUnreachedRoot), kDistanceInfinity);
  // The unreached-root sentinel sits strictly between every real distance
  // and infinity, so it never collides with either.
  EXPECT_LT(kDistanceUnreachedRoot, kDistanceInfinity);
  EXPECT_GT(kDistanceUnreachedRoot, 1u << 30);
}

// --- DistanceLabels driven directly against a raw heap ----------------------

constexpr Distance kThreshold = 3;

std::uint64_t SlotOf(ObjectId id) { return Heap::SlotOfIndex(id.index); }

class DistanceLabelsUnitTest : public ::testing::Test {
 protected:
  DistanceLabelsUnitTest() : heap_(0), labels_(heap_, kThreshold, 0) {
    heap_.SetMutationListener(&labels_);
  }
  ~DistanceLabelsUnitTest() override { heap_.SetMutationListener(nullptr); }

  ObjectId NewObject(std::size_t slots) { return heap_.Allocate(slots); }

  void Rebuild() { labels_.RebuildFromScratch(contribs_); }

  void SetContribution(ObjectId id, Distance d) {
    contribs_[SlotOf(id)] = d;
    labels_.ReconcileContributions(contribs_);
  }

  void DropContribution(ObjectId id) {
    contribs_.erase(SlotOf(id));
    if (labels_.fresh()) labels_.ReconcileContributions(contribs_);
  }

  void Verify() { labels_.VerifyAgainstFullPropagation(contribs_); }

  Distance Label(ObjectId id) const { return labels_.LabelOfSlot(SlotOf(id)); }

  Heap heap_;
  DistanceLabels labels_;
  DistanceLabels::ContributionMap contribs_;
};

TEST_F(DistanceLabelsUnitTest, RebuildDerivesReachabilityMinLabels) {
  //   a(0) -> b -> c      d(2) -> c      e (no contribution, unreachable)
  const ObjectId a = NewObject(1), b = NewObject(1), c = NewObject(0);
  const ObjectId d = NewObject(1), e = NewObject(0);
  heap_.SetSlot(a, 0, b);
  heap_.SetSlot(b, 0, c);
  heap_.SetSlot(d, 0, c);
  contribs_[SlotOf(a)] = 0;
  contribs_[SlotOf(d)] = 2;
  Rebuild();
  ASSERT_TRUE(labels_.fresh());
  EXPECT_EQ(Label(a), 0u);
  EXPECT_EQ(Label(b), 0u);
  EXPECT_EQ(Label(c), 0u);  // min(0 via b, 2 via d): intra-site edges cost 0
  EXPECT_EQ(Label(d), 2u);
  EXPECT_EQ(Label(e), kDistanceInfinity);
  EXPECT_EQ(labels_.stats().rebuilds, 1u);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, NewEdgeRipplesTheLowerLabelDownstream) {
  const ObjectId a = NewObject(1);
  const ObjectId h = NewObject(1), m = NewObject(1), t = NewObject(0);
  heap_.SetSlot(h, 0, m);
  heap_.SetSlot(m, 0, t);
  contribs_[SlotOf(a)] = 0;
  contribs_[SlotOf(h)] = 2;
  Rebuild();
  EXPECT_EQ(Label(t), 2u);

  const std::uint64_t before = labels_.stats().objects_relabeled;
  heap_.SetSlot(a, 0, m);  // 0 now reaches m: ripple m and t down, not h
  EXPECT_EQ(Label(m), 0u);
  EXPECT_EQ(Label(t), 0u);
  EXPECT_EQ(Label(h), 2u);
  // Bounded repair: exactly the two downstream slots were relabeled.
  EXPECT_EQ(labels_.stats().objects_relabeled - before, 2u);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, SeveredEdgeRefloorsExactlyTheDependentCone) {
  // a(0) -> b -> c, with c also held by d(2). Cutting a->b must raise b to
  // infinity and c to 2 — and must not touch a or d.
  const ObjectId a = NewObject(1), b = NewObject(1), c = NewObject(0);
  const ObjectId d = NewObject(1);
  heap_.SetSlot(a, 0, b);
  heap_.SetSlot(b, 0, c);
  heap_.SetSlot(d, 0, c);
  contribs_[SlotOf(a)] = 0;
  contribs_[SlotOf(d)] = 2;
  Rebuild();

  heap_.SetSlot(a, 0, ObjectId{});
  ASSERT_TRUE(labels_.fresh());
  EXPECT_EQ(Label(a), 0u);
  EXPECT_EQ(Label(b), kDistanceInfinity);
  EXPECT_EQ(Label(c), 2u);
  EXPECT_EQ(Label(d), 2u);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, CycleSurvivesRefloorWithoutSelfSupport) {
  // A two-object cycle fed only by a(1): cutting the feed must drop BOTH
  // members to infinity — the cone walk must not let the cycle's internal
  // edge keep it alive.
  const ObjectId a = NewObject(1), x = NewObject(1), y = NewObject(1);
  heap_.SetSlot(a, 0, x);
  heap_.SetSlot(x, 0, y);
  heap_.SetSlot(y, 0, x);
  contribs_[SlotOf(a)] = 1;
  Rebuild();
  EXPECT_EQ(Label(x), 1u);
  EXPECT_EQ(Label(y), 1u);

  heap_.SetSlot(a, 0, ObjectId{});
  EXPECT_EQ(Label(x), kDistanceInfinity);
  EXPECT_EQ(Label(y), kDistanceInfinity);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, ContributionChangesRepairInPlace) {
  const ObjectId a = NewObject(1), b = NewObject(0);
  heap_.SetSlot(a, 0, b);
  contribs_[SlotOf(a)] = 2;
  Rebuild();
  EXPECT_EQ(Label(b), 2u);

  SetContribution(a, 1);  // decrease: ripple
  ASSERT_TRUE(labels_.fresh());
  EXPECT_EQ(Label(a), 1u);
  EXPECT_EQ(Label(b), 1u);
  Verify();

  DropContribution(a);  // removal to infinity: exact re-floor, NOT a breach
  ASSERT_TRUE(labels_.fresh());
  EXPECT_EQ(Label(a), kDistanceInfinity);
  EXPECT_EQ(Label(b), kDistanceInfinity);
  EXPECT_EQ(labels_.stats().threshold_breaches, 0u);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, ThresholdBreachStalesThePlane) {
  const ObjectId a = NewObject(0);
  contribs_[SlotOf(a)] = kThreshold;  // clean side of the threshold
  Rebuild();

  // Crossing upward to a FINITE value is the paper's suspicion ripening —
  // rare, and re-propagated rather than repaired.
  contribs_[SlotOf(a)] = kThreshold + 1;
  labels_.ReconcileContributions(contribs_);
  EXPECT_FALSE(labels_.fresh());
  EXPECT_EQ(labels_.stats().threshold_breaches, 1u);

  Rebuild();
  ASSERT_TRUE(labels_.fresh());
  EXPECT_EQ(Label(a), kThreshold + 1);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, RepairBudgetBlowoutStalesMidRepair) {
  Heap heap(0);
  DistanceLabels tight(heap, kThreshold, /*repair_budget=*/4);
  heap.SetMutationListener(&tight);
  DistanceLabels::ContributionMap contribs;

  std::vector<ObjectId> chain;
  for (int i = 0; i < 32; ++i) chain.push_back(heap.Allocate(1));
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    heap.SetSlot(chain[i], 0, chain[i + 1]);
  }
  contribs[SlotOf(chain.front())] = 0;
  tight.RebuildFromScratch(contribs);
  ASSERT_TRUE(tight.fresh());

  // Severing the head invalidates all 32 slots; the budget trips mid-event.
  heap.SetSlot(chain.front(), 0, ObjectId{});
  EXPECT_FALSE(tight.fresh());

  // Events while stale are ignored; the rebuild squares everything away.
  heap.SetSlot(chain[5], 0, ObjectId{});
  tight.RebuildFromScratch(contribs);
  ASSERT_TRUE(tight.fresh());
  tight.VerifyAgainstFullPropagation(contribs);
  EXPECT_EQ(tight.LabelOfSlot(SlotOf(chain[1])), kDistanceInfinity);
  heap.SetMutationListener(nullptr);
}

TEST_F(DistanceLabelsUnitTest, FreeUnlinksAndRecycledSlotStartsClean) {
  const ObjectId a = NewObject(1), b = NewObject(1), c = NewObject(0);
  heap_.SetSlot(a, 0, b);
  heap_.SetSlot(b, 0, c);
  contribs_[SlotOf(a)] = 0;
  Rebuild();
  EXPECT_EQ(Label(c), 0u);

  // Free the middle of the chain; c loses its only path.
  heap_.SetSlot(a, 0, ObjectId{});
  DropContribution(b);
  heap_.Free(b);
  ASSERT_TRUE(labels_.fresh());
  EXPECT_EQ(Label(c), kDistanceInfinity);
  Verify();

  // The recycled slot (same storage, fresh generation) joins unlabeled.
  const ObjectId reborn = NewObject(1);
  EXPECT_EQ(SlotOf(reborn), SlotOf(b));
  EXPECT_EQ(Label(reborn), kDistanceInfinity);
  heap_.SetSlot(a, 0, reborn);
  heap_.SetSlot(reborn, 0, c);
  EXPECT_EQ(Label(reborn), 0u);
  EXPECT_EQ(Label(c), 0u);
  Verify();
}

TEST_F(DistanceLabelsUnitTest, RemoteTargetsFeedTheSupportIndex) {
  const ObjectId remote{7, 1};
  const ObjectId a = NewObject(1), b = NewObject(1);
  heap_.SetSlot(a, 0, remote);
  heap_.SetSlot(b, 0, remote);
  contribs_[SlotOf(a)] = 1;
  Rebuild();

  // Only holders with label <= threshold support the outref; the minimum
  // supporting label determines the clean outref distance (min + 1).
  const auto& support = labels_.outref_support();
  ASSERT_TRUE(support.contains(remote));
  EXPECT_EQ(support.at(remote).begin()->first, 1u);

  contribs_[SlotOf(b)] = 0;
  labels_.ReconcileContributions(contribs_);
  EXPECT_EQ(labels_.outref_support().at(remote).begin()->first, 0u);
  Verify();

  // Dropping both contributions leaves the outref unsupported entirely.
  contribs_.clear();
  labels_.ReconcileContributions(contribs_);
  ASSERT_TRUE(labels_.fresh());
  EXPECT_FALSE(labels_.outref_support().contains(remote));
  Verify();
}

// --- Property: the invariant holds after EVERY mutation step ----------------

class DistanceLabelsChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceLabelsChurn, EveryMutationStepMatchesAFullPropagation) {
  // Random allocate/wire/sever/free/contribution schedule against a raw
  // heap. After every step the maintained plane must equal a from-scratch
  // forward propagation (labels AND outref support, bit for bit) — with the
  // stale-path maintainer exercised too via a deliberately tight budget.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 2654435761ULL);
  Heap heap(0);
  // Budget 64: most repairs fit, some blow out — both paths get coverage.
  DistanceLabels labels(heap, kThreshold, /*repair_budget=*/64);
  heap.SetMutationListener(&labels);
  DistanceLabels::ContributionMap contribs;
  labels.RebuildFromScratch(contribs);

  std::vector<ObjectId> live;
  std::uint64_t rebuilds_forced = 0;
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t op = rng.NextBelow(100);
    if (op < 30 || live.size() < 4) {
      live.push_back(heap.Allocate(1 + rng.NextBelow(3)));
    } else if (op < 60) {
      const ObjectId source = live[rng.NextBelow(live.size())];
      const std::size_t slot = rng.NextBelow(heap.Get(source).slots.size());
      ObjectId target;  // null a third of the time: that's a severance
      if (rng.NextBelow(3) != 0) {
        target = rng.NextBool(0.2) ? ObjectId{7, 1 + rng.NextBelow(4)}
                                   : live[rng.NextBelow(live.size())];
      }
      heap.SetSlot(source, slot, target);
    } else if (op < 75) {
      const ObjectId obj = live[rng.NextBelow(live.size())];
      // Contribution churn below the threshold plus removals: the dominant
      // workload. (Upward finite crossings stale the plane by design and
      // are covered by ThresholdBreachStalesThePlane.)
      if (rng.NextBool(0.3)) {
        contribs.erase(SlotOf(obj));
      } else {
        contribs[SlotOf(obj)] = rng.NextBelow(kThreshold + 1);
      }
      if (labels.fresh()) labels.ReconcileContributions(contribs);
    } else if (live.size() > 4) {
      const std::size_t pick = rng.NextBelow(live.size());
      const ObjectId victim = live[pick];
      contribs.erase(SlotOf(victim));
      heap.Free(victim);  // other objects may still point at it: dangling
      live.erase(live.begin() + pick);
    }
    if (!labels.fresh()) {
      labels.RebuildFromScratch(contribs);
      ++rebuilds_forced;
    }
    labels.VerifyAgainstFullPropagation(contribs);
  }
  EXPECT_GT(labels.stats().repairs, 0u) << "no repair ever ran; test vacuous";
  // The incremental path must carry most steps; rebuilds stay the exception.
  EXPECT_LT(rebuilds_forced, 75u);
  heap.SetMutationListener(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceLabelsChurn,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- System-level: label-serving traces are observably identical ------------

CollectorConfig DistanceConfig(bool differential = true) {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.incremental_distance = true;
  config.incremental_distance_differential = differential;
  return config;
}

// Same observable surface the incremental-trace twins compare: tables
// (distances, cleanliness, flags) and back info, per site.
std::string DumpObservableState(const System& system) {
  std::ostringstream os;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const Site& site = system.site(s);
    os << "site " << s << " objects " << site.heap().object_count() << '\n';
    for (const auto& [obj, entry] : site.tables().inrefs()) {
      os << "  in " << obj << " d=" << entry.distance()
         << " flag=" << entry.garbage_flagged << '\n';
    }
    for (const auto& [ref, entry] : site.tables().outrefs()) {
      os << "  out " << ref << " d=" << entry.distance
         << " clean=" << entry.clean() << '\n';
    }
    for (const auto& [inref, outset] : site.back_info().inref_outsets) {
      os << "  outset " << inref << ":";
      for (const ObjectId o : outset) os << ' ' << o;
      os << '\n';
    }
    for (const auto& [outref, inset] : site.back_info().outref_insets) {
      os << "  inset " << outref << ":";
      for (const ObjectId o : inset) os << ' ' << o;
      os << '\n';
    }
  }
  return os.str();
}

TEST(DistanceSystemTest, KnobOffLeavesCountersAtZero) {
  CollectorConfig config = DistanceConfig();
  config.incremental_distance = false;
  config.incremental_distance_differential = false;
  System system(2, config, {}, /*seed=*/5);
  workload::ChurnDriver driver(system, Rng(99));
  workload::ChurnSpec spec;
  spec.steps = 20;
  driver.Run(spec);
  for (SiteId s = 0; s < system.site_count(); ++s) {
    EXPECT_EQ(system.site(s).stats().distance_repairs, 0u);
    EXPECT_EQ(system.site(s).stats().distance_fallbacks, 0u);
    EXPECT_EQ(system.site(s).stats().objects_relabeled, 0u);
    EXPECT_EQ(system.site(s).stats().label_serves, 0u);
  }
}

class DistanceTwinFigures : public ::testing::TestWithParam<int> {};

TEST_P(DistanceTwinFigures, LabelTwinMatchesFullTwinEveryRound) {
  // Identically seeded systems, one serving traces from repaired labels
  // (with the oracle double-checking every plane) and one running the
  // classic full trace, must agree on every observable after every round.
  const int figure = GetParam();
  CollectorConfig full_config = DistanceConfig();
  full_config.incremental_distance = false;
  full_config.incremental_distance_differential = false;
  System full(4, full_config, {}, /*seed=*/17);
  System inc(4, DistanceConfig(), {}, /*seed=*/17);
  for (System* system : {&full, &inc}) {
    switch (figure) {
      case 1:
        workload::BuildFigure1(*system);
        break;
      case 4:
        workload::BuildFigure4(*system, /*close_scc=*/true);
        break;
      default:
        workload::BuildFigure5(*system, /*with_second_source=*/true);
        break;
    }
  }
  for (int round = 0; round < 12; ++round) {
    full.RunRound();
    inc.RunRound();
    EXPECT_EQ(DumpObservableState(full), DumpObservableState(inc))
        << "figure " << figure << " diverged at round " << round;
  }
  EXPECT_EQ(full.TotalObjectsReclaimed(), inc.TotalObjectsReclaimed());
  std::uint64_t serves = 0;
  for (SiteId s = 0; s < inc.site_count(); ++s) {
    serves += inc.site(s).stats().label_serves;
  }
  EXPECT_GT(serves, 0u) << "no trace was ever served from labels";
}

INSTANTIATE_TEST_SUITE_P(Figures, DistanceTwinFigures,
                         ::testing::Values(1, 4, 5));

class DistanceDifferentialChurn
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceDifferentialChurn, EveryServedTraceMatchesTheOracle) {
  // incremental_distance_differential makes the collector the oracle: every
  // label-served trace also runs the shadow full trace AND recomputes the
  // label plane from scratch, aborting on any divergence.
  const std::uint64_t seed = GetParam();
  NetworkConfig net;
  net.latency = 6;
  net.latency_jitter = 6;
  System system(4, DistanceConfig(), net, seed);
  workload::ChurnDriver driver(system, Rng(seed * 2654435761ULL));
  workload::ChurnSpec spec;
  spec.steps = 50;
  driver.Run(spec);
  EXPECT_NO_THROW(driver.Quiesce());
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << system.CheckLocalSafetyInvariant();
  std::uint64_t serves = 0, repairs = 0;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    serves += system.site(s).stats().label_serves;
    repairs += system.site(s).stats().distance_repairs;
  }
  EXPECT_GT(serves, 0u) << "no trace was ever served; differential vacuous";
  EXPECT_GT(repairs, 0u) << "no repair ever fired under churn";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceDifferentialChurn,
                         ::testing::Range<std::uint64_t>(1, 11));

struct MatrixCase {
  bool incremental_trace;
  std::size_t mark_threads;
};

class DistanceMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DistanceMatrix, DifferentialHoldsAcrossTheConfigMatrix) {
  // incremental_distance composed with incremental traces and parallel
  // marking: the differential plus the end-state safety checks must hold in
  // every cell. (mark_threads > 1 also puts this under TSan via the
  // `distance` ctest label.)
  const MatrixCase param = GetParam();
  CollectorConfig config = DistanceConfig();
  config.incremental_trace = param.incremental_trace;
  config.incremental_differential = param.incremental_trace;
  config.mark_threads = param.mark_threads;
  NetworkConfig net;
  net.latency = 6;
  System system(4, config, net, /*seed=*/23);
  workload::ChurnDriver driver(system, Rng(23 * 2654435761ULL));
  workload::ChurnSpec spec;
  spec.steps = 40;
  driver.Run(spec);
  EXPECT_NO_THROW(driver.Quiesce());
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  std::uint64_t serves = 0;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    serves += system.site(s).stats().label_serves;
  }
  EXPECT_GT(serves, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cells, DistanceMatrix,
                         ::testing::Values(MatrixCase{false, 1},
                                           MatrixCase{true, 1},
                                           MatrixCase{false, 3},
                                           MatrixCase{true, 3}));

TEST(DistanceSystemTest, CrashRestartForcesAFallbackRebuild) {
  System system(2, DistanceConfig());
  const ObjectId target = system.NewObject(1, 0);
  workload::TetherToRoot(system, target, 1);
  system.RunRounds(3);
  const std::uint64_t fallbacks_before =
      system.site(1).stats().distance_fallbacks;
  ASSERT_TRUE(system.site(1).collector().distance_labels().fresh());

  system.site(1).CrashRestart();
  EXPECT_FALSE(system.site(1).collector().distance_labels().fresh());
  system.RunRound();  // must rebuild from scratch, counted as a fallback
  EXPECT_GT(system.site(1).stats().distance_fallbacks, fallbacks_before);
  EXPECT_TRUE(system.site(1).collector().distance_labels().fresh());
  EXPECT_TRUE(system.ObjectExists(target));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(DistanceSystemTest, SessionWriteRepairsInsteadOfRelabelingTheHeap) {
  // The headline economics: after warmup, severing one leaf must cost a
  // bounded repair — a handful of relabels — not a heap-sized propagation.
  System system(1, DistanceConfig(/*differential=*/false));
  const ObjectId root = system.NewObject(0, 2);
  system.SetPersistentRoot(root);
  const ObjectId hub = system.NewObject(0, 64);
  system.Wire(root, 0, hub);
  std::vector<ObjectId> leaves;
  for (std::size_t i = 0; i < 64; ++i) {
    leaves.push_back(system.NewObject(0, 0));
    system.Wire(hub, i, leaves.back());
  }
  system.RunRounds(2);
  const std::uint64_t relabeled_warm =
      system.site(0).stats().objects_relabeled;

  Session session(system, 0, 1);
  session.Hold(hub);
  session.Write(hub, 0, ObjectId{});  // sever one leaf
  session.Release(hub);
  system.RunRound();
  // One slot went unreachable; the repair touched it alone (plus nothing on
  // the serve path), where a full propagation would rewrite all 66 labels.
  const std::uint64_t delta =
      system.site(0).stats().objects_relabeled - relabeled_warm;
  EXPECT_GE(delta, 1u);
  EXPECT_LE(delta, 4u);
  EXPECT_FALSE(system.ObjectExists(leaves[0]));
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_TRUE(system.ObjectExists(leaves[i]));
  }
}

TEST(DistanceSystemTest, CountersReachInspectAndMetrics) {
  System system(2, DistanceConfig());
  const ObjectId target = system.NewObject(1, 0);
  workload::TetherToRoot(system, target, 1);
  MetricsRecorder recorder;
  recorder.CaptureRounds(system, 3);

  const std::string described = DescribeSite(system.site(1));
  EXPECT_NE(described.find("distance labels:"), std::string::npos);
  const std::string csv = recorder.ToCsv();
  EXPECT_NE(csv.find("distance_repairs"), std::string::npos);
  EXPECT_NE(csv.find("label_serves"), std::string::npos);
  EXPECT_GT(recorder.samples().back().label_serves, 0u);
}

}  // namespace
}  // namespace dgc
