// Tests for incremental local traces: the quiescent short-circuit, the
// suspect-distance-drift refold, mutation-driven dirty tracking through the
// heap/barrier choke points, crash-restart invalidation, the flat back-info
// delta maintenance, and — the correctness anchor — differential runs where
// every reused trace is checked against a shadow full trace
// (CollectorConfig::incremental_differential).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "backinfo/site_back_info.h"
#include "common/rng.h"
#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"
#include "workload/churn.h"
#include "workload/figures.h"

namespace dgc {
namespace {

CollectorConfig IncrementalConfig(bool differential = true) {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.incremental_trace = true;
  config.incremental_differential = differential;
  return config;
}

// --- Quiescent short-circuit -----------------------------------------------

TEST(IncrementalTraceTest, QuiescentSiteReusesThePreviousTrace) {
  System system(1, IncrementalConfig());
  const ObjectId root = system.NewObject(0, 2);
  system.SetPersistentRoot(root);
  system.Wire(root, 0, system.NewObject(0, 0));
  system.Wire(root, 1, system.NewObject(0, 0));

  system.RunRound();  // full trace: builds the cache
  EXPECT_EQ(system.site(0).stats().quiescent_skips, 0u);
  const std::uint64_t retraced_after_full =
      system.site(0).stats().objects_retraced;
  EXPECT_EQ(retraced_after_full, 3u);
  EXPECT_TRUE(system.site(0).collector().cache_valid());
  EXPECT_EQ(system.site(0).heap().dirty_object_count(), 0u);

  system.RunRounds(4);  // nothing mutates: every trace is a verbatim reuse
  EXPECT_EQ(system.site(0).stats().quiescent_skips, 4u);
  EXPECT_EQ(system.site(0).stats().objects_retraced, retraced_after_full);
  EXPECT_EQ(system.site(0).stats().local_traces, 5u);
  EXPECT_TRUE(system.ObjectExists(root));
}

TEST(IncrementalTraceTest, KnobOffNeverSkipsAndReportsNoIncrementalWork) {
  CollectorConfig config = IncrementalConfig();
  config.incremental_trace = false;
  System system(1, config);
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  system.RunRounds(5);
  EXPECT_EQ(system.site(0).stats().quiescent_skips, 0u);
  EXPECT_EQ(system.site(0).stats().objects_retraced, 0u);
  EXPECT_EQ(system.site(0).stats().outsets_reused, 0u);
}

// --- Dirty tracking through the mutation choke points ----------------------

TEST(IncrementalTraceTest, SlotWriteDirtiesAndForcesAFullTrace) {
  System system(1, IncrementalConfig());
  const ObjectId root = system.NewObject(0, 2);
  system.SetPersistentRoot(root);
  const ObjectId child = system.NewObject(0, 0);
  system.Wire(root, 0, child);
  system.RunRounds(2);
  EXPECT_EQ(system.site(0).stats().quiescent_skips, 1u);

  // A session write is observed by the heap's write barrier: the site stops
  // being quiescent and the severed child is swept by a real (full) trace.
  Session session(system, 0, 1);
  session.Hold(root);
  session.Write(root, 0, kInvalidObject);
  EXPECT_GT(system.site(0).heap().dirty_object_count(), 0u);
  session.Release(root);

  const std::uint64_t skips_before = system.site(0).stats().quiescent_skips;
  const std::uint64_t retraced_before =
      system.site(0).stats().objects_retraced;
  system.RunRound();
  EXPECT_EQ(system.site(0).stats().quiescent_skips, skips_before);
  EXPECT_GT(system.site(0).stats().objects_retraced, retraced_before);
  EXPECT_FALSE(system.ObjectExists(child));
}

TEST(IncrementalTraceTest, RootSetChangesInvalidateQuiescence) {
  System system(1, IncrementalConfig());
  const ObjectId a = system.NewObject(0, 0);
  system.SetPersistentRoot(a);
  system.RunRounds(2);
  const std::uint64_t skips = system.site(0).stats().quiescent_skips;
  EXPECT_GT(skips, 0u);

  const ObjectId b = system.NewObject(0, 0);  // allocation dirties the heap
  system.SetPersistentRoot(b);
  system.RunRound();
  EXPECT_EQ(system.site(0).stats().quiescent_skips, skips);
  system.RunRound();  // quiescent again around the new root set
  EXPECT_EQ(system.site(0).stats().quiescent_skips, skips + 1);
}

TEST(IncrementalTraceTest, RemoteBarrierActivityInvalidatesQuiescence) {
  // A new inref appearing at the owner changes its trace inputs, which the
  // snapshot comparison must catch even though the owner's heap (and hence
  // its mutation epoch) never changed.
  System system(2, IncrementalConfig());
  const ObjectId target = system.NewObject(1, 0);
  const ObjectId tether = workload::TetherToRoot(system, target, 1);
  (void)tether;
  system.RunRounds(2);
  const std::uint64_t skips = system.site(1).stats().quiescent_skips;
  EXPECT_GT(skips, 0u);
  const std::uint64_t epoch_before = system.site(1).heap().mutation_epoch();

  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, target);  // new inref source lands at site 1
  EXPECT_EQ(system.site(1).heap().mutation_epoch(), epoch_before);
  system.RunRound();
  EXPECT_EQ(system.site(1).stats().quiescent_skips, skips);
  ASSERT_NE(system.site(1).tables().FindInref(target), nullptr);
  EXPECT_EQ(system.site(1).tables().FindInref(target)->sources.size(), 1u);
}

// --- Suspect-distance drift (the refold reuse level) -----------------------

TEST(IncrementalTraceTest, RipeningCycleRefoldsDistancesWithoutRetracing) {
  // A cross-site garbage cycle's inref distances grow by one every epoch
  // (§3): the heap is quiescent but the trace inputs drift — exactly the
  // refold level. Differential mode checks each refold against a shadow
  // full trace, and back tracing is disabled so ripening runs forever.
  CollectorConfig config = IncrementalConfig();
  config.enable_back_tracing = false;
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  (void)cycle;
  system.RunRounds(8);

  std::uint64_t reused = 0;
  for (SiteId s = 0; s < 2; ++s) reused += system.site(s).stats().outsets_reused;
  EXPECT_GT(reused, 0u);
  // Once suspected and drifting, traces stop re-visiting the heap.
  const std::uint64_t retraced_mid =
      system.site(0).stats().objects_retraced +
      system.site(1).stats().objects_retraced;
  system.RunRounds(4);
  EXPECT_EQ(system.site(0).stats().objects_retraced +
                system.site(1).stats().objects_retraced,
            retraced_mid);
}

// --- Crash-restart ----------------------------------------------------------

TEST(IncrementalTraceTest, CrashRestartDropsTheCacheAndDirtyKnowledge) {
  System system(2, IncrementalConfig());
  const ObjectId target = system.NewObject(1, 0);
  workload::TetherToRoot(system, target, 1);
  system.RunRounds(3);
  EXPECT_TRUE(system.site(1).collector().cache_valid());

  system.site(1).CrashRestart();
  EXPECT_FALSE(system.site(1).collector().cache_valid());
  // With no trustworthy dirty record, every live object is conservatively
  // dirty until the next full trace consumes the sets.
  EXPECT_EQ(system.site(1).heap().dirty_object_count(),
            system.site(1).heap().object_count());

  const std::uint64_t skips = system.site(1).stats().quiescent_skips;
  const std::uint64_t retraced = system.site(1).stats().objects_retraced;
  system.RunRound();  // must be a full trace
  EXPECT_EQ(system.site(1).stats().quiescent_skips, skips);
  EXPECT_GT(system.site(1).stats().objects_retraced, retraced);
  EXPECT_EQ(system.site(1).heap().dirty_object_count(), 0u);
  EXPECT_TRUE(system.ObjectExists(target));
}

// --- Differential property tests over real workloads -----------------------

class DifferentialChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialChurn, EveryReuseMatchesAShadowFullTrace) {
  // incremental_differential makes the collector itself the oracle: every
  // quiescent skip and every refold also runs the full trace and DGC_CHECKs
  // semantic identity. Any divergence aborts the run (and fails the test).
  const std::uint64_t seed = GetParam();
  NetworkConfig net;
  net.latency = 6;
  net.latency_jitter = 6;
  System system(4, IncrementalConfig(), net, seed);
  workload::ChurnDriver driver(system, Rng(seed * 2654435761ULL));
  workload::ChurnSpec spec;
  spec.steps = 50;
  driver.Run(spec);
  EXPECT_NO_THROW(driver.Quiesce());
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << system.CheckLocalSafetyInvariant();
  // The differential assertions only have bite if reuse actually fired.
  std::uint64_t skips = 0;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    skips += system.site(s).stats().quiescent_skips;
  }
  EXPECT_GT(skips, 0u) << "no trace was ever reused; differential vacuous";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialChurn,
                         ::testing::Range<std::uint64_t>(1, 11));

// Serializes the observable per-site collector state that incremental mode
// must not change: tables (distances, cleanliness, flags) and back info.
std::string DumpObservableState(const System& system) {
  std::ostringstream os;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const Site& site = system.site(s);
    os << "site " << s << " objects " << site.heap().object_count() << '\n';
    for (const auto& [obj, entry] : site.tables().inrefs()) {
      os << "  in " << obj << " d=" << entry.distance()
         << " flag=" << entry.garbage_flagged << '\n';
    }
    for (const auto& [ref, entry] : site.tables().outrefs()) {
      os << "  out " << ref << " d=" << entry.distance
         << " clean=" << entry.clean() << '\n';
    }
    for (const auto& [inref, outset] : site.back_info().inref_outsets) {
      os << "  outset " << inref << ":";
      for (const ObjectId o : outset) os << ' ' << o;
      os << '\n';
    }
    for (const auto& [outref, inset] : site.back_info().outref_insets) {
      os << "  inset " << outref << ":";
      for (const ObjectId o : inset) os << ' ' << o;
      os << '\n';
    }
  }
  return os.str();
}

class TwinFigures : public ::testing::TestWithParam<int> {};

TEST_P(TwinFigures, IncrementalTwinMatchesFullTwinEveryRound) {
  // Two identically seeded systems running a figure workload, one with the
  // knob on (plus differential self-checks) and one with it off, must agree
  // on every observable after every round.
  const int figure = GetParam();
  CollectorConfig full_config = IncrementalConfig();
  full_config.incremental_trace = false;
  full_config.incremental_differential = false;
  System full(4, full_config, {}, /*seed=*/17);
  System inc(4, IncrementalConfig(), {}, /*seed=*/17);
  for (System* system : {&full, &inc}) {
    switch (figure) {
      case 1:
        workload::BuildFigure1(*system);
        break;
      case 4:
        workload::BuildFigure4(*system, /*close_scc=*/true);
        break;
      default:
        workload::BuildFigure5(*system, /*with_second_source=*/true);
        break;
    }
  }
  for (int round = 0; round < 12; ++round) {
    full.RunRound();
    inc.RunRound();
    EXPECT_EQ(DumpObservableState(full), DumpObservableState(inc))
        << "figure " << figure << " diverged at round " << round;
  }
  EXPECT_EQ(full.TotalObjectsReclaimed(), inc.TotalObjectsReclaimed());
  std::uint64_t skips = 0;
  for (SiteId s = 0; s < inc.site_count(); ++s) {
    skips += inc.site(s).stats().quiescent_skips;
  }
  EXPECT_GT(skips, 0u);
}

INSTANTIATE_TEST_SUITE_P(Figures, TwinFigures, ::testing::Values(1, 4, 5));

// --- Flat back-info delta maintenance --------------------------------------

TEST(OutsetMapTest, BehavesLikeASortedMap) {
  OutsetMap map;
  const ObjectId a{1, 5}, b{1, 2}, c{2, 1};
  const std::vector<ObjectId> outset_a = {ObjectId{9, 1}};
  const std::vector<ObjectId> outset_b = {ObjectId{9, 2}};
  const std::vector<ObjectId> outset_c = {ObjectId{9, 3}};
  map[a] = outset_a;
  map[b] = outset_b;
  map.emplace(c, outset_c);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_TRUE(map.contains(a));
  EXPECT_EQ(map.at(b), outset_b);
  // Iteration is key-ordered regardless of insertion order.
  std::vector<ObjectId> keys;
  for (const auto& [key, value] : map) {
    (void)value;
    keys.push_back(key);
  }
  EXPECT_EQ(keys, (std::vector<ObjectId>{b, a, c}));
  EXPECT_EQ(map.erase(b), 1u);
  EXPECT_EQ(map.erase(b), 0u);
  EXPECT_EQ(map.find(b), map.end());
  EXPECT_EQ(map.size(), 2u);
}

TEST(OutsetDeltaTest, DeltaMatchesFullRecomputeAcrossRandomEdits) {
  // Property: starting from the same back info, ApplyOutsetDelta must land on
  // exactly what assigning the outset and rebuilding the inverse would.
  Rng rng(20260806);
  SiteBackInfo delta_maintained;
  for (int edit = 0; edit < 200; ++edit) {
    const ObjectId inref{0, 1 + rng.NextBelow(6)};
    std::vector<ObjectId> outset;
    for (std::uint64_t r = 1; r <= 8; ++r) {
      if (rng.NextBool(0.4)) outset.push_back(ObjectId{1, r});
    }
    const std::size_t ops = delta_maintained.ApplyOutsetDelta(inref, outset);
    (void)ops;
    SiteBackInfo rebuilt;
    rebuilt.inref_outsets = delta_maintained.inref_outsets;
    rebuilt.RecomputeInsets();
    ASSERT_EQ(rebuilt.outref_insets, delta_maintained.outref_insets)
        << "divergence after edit " << edit;
  }
}

TEST(OutsetDeltaTest, DeltaOpsCountOnlyChangedMemberships) {
  SiteBackInfo info;
  const ObjectId i1{0, 1};
  const ObjectId o1{1, 1}, o2{1, 2}, o3{1, 3};
  EXPECT_EQ(info.ApplyOutsetDelta(i1, {o1, o2}), 2u);
  EXPECT_EQ(info.ApplyOutsetDelta(i1, {o1, o2}), 0u);  // no-op edit
  EXPECT_EQ(info.ApplyOutsetDelta(i1, {o2, o3}), 2u);  // -o1 +o3
  EXPECT_EQ(info.ApplyOutsetDelta(i1, {}), 2u);        // removal
  EXPECT_TRUE(info.inref_outsets.empty());
  EXPECT_TRUE(info.outref_insets.empty());
}

}  // namespace
}  // namespace dgc
