// Tests for the introspection views: the rendered text must reflect the
// actual collector state (spot-checked via substrings) and the DOT export
// must be well-formed.
#include <gtest/gtest.h>

#include "core/inspect.h"
#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.enable_back_tracing = false;
  return config;
}

TEST(InspectTest, DescribeSiteShowsTablesAndStates) {
  System system(2, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(6);  // ripen into suspicion

  const std::string text = DescribeSite(system.site(0));
  EXPECT_NE(text.find("site 0"), std::string::npos);
  EXPECT_NE(text.find("inrefs (1)"), std::string::npos);
  EXPECT_NE(text.find("outrefs (1)"), std::string::npos);
  EXPECT_NE(text.find("SUSPECTED"), std::string::npos);
  EXPECT_NE(text.find("inset={"), std::string::npos);
  EXPECT_NE(text.find("back tracer:"), std::string::npos);
  (void)cycle;
}

TEST(InspectTest, DescribeSiteShowsFlaggedAndBarrierState) {
  System system(2, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(6);
  system.site(0).tables().FindInref(cycle.objects[0])->garbage_flagged = true;
  system.site(1).ApplyTransferBarrier(cycle.objects[1]);
  EXPECT_NE(DescribeSite(system.site(0)).find("FLAGGED"), std::string::npos);
  EXPECT_NE(DescribeSite(system.site(1)).find("barrier-cleaned"),
            std::string::npos);
}

TEST(InspectTest, DescribeSystemSummarizes) {
  System system(3, Config());
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(4);
  const std::string text = DescribeSystem(system);
  EXPECT_NE(text.find("system: 3 sites"), std::string::npos);
  EXPECT_NE(text.find("site 0:"), std::string::npos);
  EXPECT_NE(text.find("site 2:"), std::string::npos);
  EXPECT_NE(text.find("network:"), std::string::npos);
  EXPECT_NE(text.find("back traces:"), std::string::npos);
}

TEST(InspectTest, DescribeSystemMarksDownSites) {
  System system(2, Config());
  system.network().SetSiteDown(1, true);
  EXPECT_NE(DescribeSystem(system).find("[DOWN]"), std::string::npos);
}

TEST(InspectTest, DotExportIsWellFormed) {
  System system(2, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const ObjectId tether = workload::TetherToRoot(system, cycle.head(), 0);
  system.RunRounds(5);
  const std::string dot = ToDot(system);
  EXPECT_EQ(dot.find("digraph dgc {"), 0u);
  EXPECT_NE(dot.find("subgraph cluster_site0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_site1"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the root tether
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.rfind("}\n"), dot.size() - 2);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  (void)tether;
}

TEST(InspectTest, DotMarksSuspectedInterSiteEdges) {
  System system(2, Config());
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(6);  // suspected now
  const std::string dot = ToDot(system);
  EXPECT_NE(dot.find("style=dashed,color=red"), std::string::npos);
}

}  // namespace
}  // namespace dgc
