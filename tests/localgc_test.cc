// Tests for the local tracing collector: marking, sweeping, distance
// propagation (Section 3), outref trimming, update messages, suspect
// handling, and interaction with garbage-flagged inrefs.
#include <gtest/gtest.h>

#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig NoBackTracing(Distance threshold = 2) {
  CollectorConfig config;
  config.suspicion_threshold = threshold;
  config.enable_back_tracing = false;
  return config;
}

TEST(LocalGcTest, SweepsLocalGarbageKeepsRooted) {
  System system(1, NoBackTracing());
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  const ObjectId kept = system.NewObject(0, 0);
  const ObjectId dead1 = system.NewObject(0, 1);
  const ObjectId dead2 = system.NewObject(0, 0);
  system.Wire(root, 0, kept);
  system.Wire(dead1, 0, dead2);
  system.RunRound();
  EXPECT_TRUE(system.ObjectExists(root));
  EXPECT_TRUE(system.ObjectExists(kept));
  EXPECT_FALSE(system.ObjectExists(dead1));
  EXPECT_FALSE(system.ObjectExists(dead2));
}

TEST(LocalGcTest, LocalCycleCollectedBySingleSite) {
  System system(1, NoBackTracing());
  const ObjectId a = system.NewObject(0, 1);
  const ObjectId b = system.NewObject(0, 1);
  system.Wire(a, 0, b);
  system.Wire(b, 0, a);
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(a));
  EXPECT_FALSE(system.ObjectExists(b));
}

TEST(LocalGcTest, InrefKeepsObjectAliveEvenWhenLocallyUnreachable) {
  System system(2, NoBackTracing());
  const ObjectId target = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, target);
  system.RunRounds(3);
  EXPECT_TRUE(system.ObjectExists(target));
}

TEST(LocalGcTest, DroppedOutrefTriggersRemoteCollection) {
  System system(2, NoBackTracing());
  const ObjectId target = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, target);
  system.RunRound();
  system.Unwire(holder, 0);
  // Holder's next trace drops the outref and sends an update; the target's
  // next trace collects the object (two-step locality of §2).
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(target));
  EXPECT_EQ(system.site(0).tables().FindOutref(target), nullptr);
  EXPECT_EQ(system.site(1).tables().FindInref(target), nullptr);
}

TEST(LocalGcTest, DistancePropagatesAlongRemoteChains) {
  // root@0 -> a@1 -> b@2 -> c@3: inref distances 1, 2, 3.
  System system(4, NoBackTracing(/*threshold=*/10));
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  const ObjectId a = system.NewObject(1, 1);
  const ObjectId b = system.NewObject(2, 1);
  const ObjectId c = system.NewObject(3, 0);
  system.Wire(root, 0, a);
  system.Wire(a, 0, b);
  system.Wire(b, 0, c);
  system.RunRounds(3);
  EXPECT_EQ(system.site(1).tables().FindInref(a)->distance(), 1u);
  EXPECT_EQ(system.site(2).tables().FindInref(b)->distance(), 2u);
  EXPECT_EQ(system.site(3).tables().FindInref(c)->distance(), 3u);
}

TEST(LocalGcTest, DistanceTakesMinimumOverPaths) {
  // c reachable via root->c (distance 1) and root->a@1->c (distance 2).
  System system(3, NoBackTracing(10));
  const ObjectId root = system.NewObject(0, 2);
  system.SetPersistentRoot(root);
  const ObjectId a = system.NewObject(1, 1);
  const ObjectId c = system.NewObject(2, 0);
  system.Wire(root, 0, a);
  system.Wire(root, 1, c);
  system.Wire(a, 0, c);
  system.RunRounds(3);
  EXPECT_EQ(system.site(2).tables().FindInref(c)->distance(), 1u);
}

TEST(LocalGcTest, DistanceRecoversWhenShorterPathAppears) {
  System system(3, NoBackTracing(10));
  const ObjectId root = system.NewObject(0, 2);
  system.SetPersistentRoot(root);
  const ObjectId a = system.NewObject(1, 1);
  const ObjectId c = system.NewObject(2, 0);
  system.Wire(root, 0, a);
  system.Wire(a, 0, c);
  system.RunRounds(3);
  EXPECT_EQ(system.site(2).tables().FindInref(c)->distance(), 2u);
  system.Wire(root, 1, c);  // new direct edge
  system.RunRounds(3);
  EXPECT_EQ(system.site(2).tables().FindInref(c)->distance(), 1u);
}

TEST(LocalGcTest, GarbageCycleDistancesExceedAnyThresholdEventually) {
  CollectorConfig config = NoBackTracing(/*threshold=*/5);
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  for (int round = 0; round < 12; ++round) system.RunRound();
  const InrefEntry* inref =
      system.site(0).tables().FindInref(cycle.objects[0]);
  ASSERT_NE(inref, nullptr);
  // Theorem (§3): after d rounds, estimated distances are at least d.
  EXPECT_GE(inref->distance(), 12u);
}

TEST(LocalGcTest, SuspectedInrefGetsOutsetComputed) {
  CollectorConfig config = NoBackTracing(/*threshold=*/2);
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(5);  // distances exceed 2: both inrefs suspected
  const auto& info0 = system.site(0).back_info();
  ASSERT_EQ(info0.inref_outsets.size(), 1u);
  // Site 0's inref (cycle object 0) locally reaches the outref to object 1.
  EXPECT_EQ(info0.inref_outsets.begin()->first, cycle.objects[0]);
  EXPECT_EQ(info0.inref_outsets.begin()->second,
            std::vector<ObjectId>{cycle.objects[1]});
}

TEST(LocalGcTest, CleanInrefsProduceNoBackInfo) {
  System system(2, NoBackTracing(/*threshold=*/5));
  const ObjectId target = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, target);
  system.RunRounds(4);
  EXPECT_TRUE(system.site(1).back_info().inref_outsets.empty());
  EXPECT_TRUE(system.site(0).back_info().outref_insets.empty());
}

TEST(LocalGcTest, GarbageFlaggedInrefIsNotARoot) {
  System system(2, NoBackTracing());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRound();
  // Manually condemn both inrefs (what a completed back trace's report does).
  system.site(0).tables().FindInref(cycle.objects[0])->garbage_flagged = true;
  system.site(1).tables().FindInref(cycle.objects[1])->garbage_flagged = true;
  system.RunRounds(3);
  EXPECT_FALSE(system.ObjectExists(cycle.objects[0]));
  EXPECT_FALSE(system.ObjectExists(cycle.objects[1]));
  // Entries removed through regular update messages (§4.5).
  EXPECT_EQ(system.site(0).tables().FindInref(cycle.objects[0]), nullptr);
  EXPECT_EQ(system.site(1).tables().FindInref(cycle.objects[1]), nullptr);
}

TEST(LocalGcTest, AppRootsKeepObjectsAlive) {
  System system(1, NoBackTracing());
  Session session(system, 0, /*id=*/1);
  const ObjectId held = session.Create(1);
  system.RunRounds(2);
  EXPECT_TRUE(system.ObjectExists(held));
  session.Release(held);
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(held));
}

TEST(LocalGcTest, PinnedOutrefSurvivesTrimmingAndStaysClean) {
  System system(2, NoBackTracing());
  Session session(system, 0, 1);
  const ObjectId remote = system.NewObject(1, 0);
  const ObjectId tether = workload::TetherToRoot(system, remote, 1);
  const ObjectId got = session.LoadRoot(remote);  // pins the outref at site 0
  EXPECT_EQ(got, remote);
  system.Unwire(tether, 0);
  system.RunRounds(3);
  // No heap path at site 0 reaches the outref, but the session variable pins
  // it: the object must survive.
  EXPECT_TRUE(system.ObjectExists(remote));
  const OutrefEntry* outref = system.site(0).tables().FindOutref(remote);
  ASSERT_NE(outref, nullptr);
  EXPECT_TRUE(outref->clean());
  session.Release(remote);
  system.RunRounds(3);
  EXPECT_FALSE(system.ObjectExists(remote));
}

TEST(LocalGcTest, UpdateMessagesOnlySentOnDistanceChange) {
  CollectorConfig config = NoBackTracing(10);
  config.update_refresh_period = 0;  // isolate the change-driven path
  System system(2, config);
  const ObjectId target = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, target);
  system.RunRounds(2);  // distance settles at 1
  const auto sent_before = system.site(0).stats().updates_sent;
  system.RunRounds(3);  // steady state: no distance changes
  EXPECT_EQ(system.site(0).stats().updates_sent, sent_before);
}

TEST(LocalGcTest, TraceResultStatsAreConsistent) {
  System system(2, NoBackTracing());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 3});
  workload::TetherToRoot(system, cycle.head(), 0);
  system.RunRound();
  const SiteStats& stats = system.site(0).stats();
  EXPECT_EQ(stats.local_traces, 1u);
}

}  // namespace
}  // namespace dgc
