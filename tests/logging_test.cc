// Tests for the logger: levels gate output, sinks capture it.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/logging.h"

namespace dgc {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Instance().set_sink(
        [this](LogLevel level, const std::string& message) {
          captured_.emplace_back(level, message);
        });
  }
  void TearDown() override {
    Logger::Instance().set_level(LogLevel::kOff);
    Logger::Instance().set_sink(nullptr);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, OffSuppressesEverything) {
  Logger::Instance().set_level(LogLevel::kOff);
  DGC_LOG_ERROR("nope");
  DGC_LOG_INFO("nope");
  DGC_LOG_TRACE("nope");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, LevelGatesBySeverity) {
  Logger::Instance().set_level(LogLevel::kInfo);
  DGC_LOG_ERROR("e");
  DGC_LOG_INFO("i");
  DGC_LOG_DEBUG("d");  // below the gate
  DGC_LOG_TRACE("t");  // below the gate
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "e");
  EXPECT_EQ(captured_[1].second, "i");
}

TEST_F(LoggingTest, TraceLevelPassesEverything) {
  Logger::Instance().set_level(LogLevel::kTrace);
  DGC_LOG_ERROR("e");
  DGC_LOG_DEBUG("d");
  DGC_LOG_TRACE("t");
  EXPECT_EQ(captured_.size(), 3u);
}

TEST_F(LoggingTest, StreamExpressionsFormat) {
  Logger::Instance().set_level(LogLevel::kInfo);
  DGC_LOG_INFO("x=" << 42 << " y=" << 1.5);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=42 y=1.5");
}

TEST_F(LoggingTest, DisabledLevelsDoNotEvaluateTheExpression) {
  Logger::Instance().set_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "computed";
  };
  DGC_LOG_DEBUG(expensive());
  EXPECT_EQ(evaluations, 0);
  DGC_LOG_ERROR(expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace dgc
