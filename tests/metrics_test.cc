// Tests for the metrics recorder: samples reflect the world, CSV is sane.
#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  return config;
}

TEST(MetricsTest, SeriesTracksCollectionLifecycle) {
  System system(2, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  MetricsRecorder recorder;
  recorder.Capture(system);  // round 0
  recorder.CaptureRounds(system, 15);

  const auto& samples = recorder.samples();
  ASSERT_EQ(samples.size(), 16u);
  EXPECT_EQ(samples.front().objects_stored, 2u);
  EXPECT_EQ(samples.front().suspected_inrefs, 0u);
  // Suspicion must appear at some point, then collection empties the world.
  bool suspected_seen = false;
  for (const auto& sample : samples) {
    if (sample.suspected_inrefs > 0) suspected_seen = true;
  }
  EXPECT_TRUE(suspected_seen);
  EXPECT_EQ(samples.back().objects_stored, 0u);
  EXPECT_EQ(samples.back().objects_reclaimed, 2u);
  EXPECT_GE(samples.back().traces_garbage, 1u);
  // Monotone cumulative counters.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].messages_sent, samples[i - 1].messages_sent);
    EXPECT_GE(samples[i].objects_reclaimed, samples[i - 1].objects_reclaimed);
  }
}

TEST(MetricsTest, CsvHasHeaderAndOneRowPerSample) {
  System system(2, Config());
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  MetricsRecorder recorder;
  recorder.CaptureRounds(system, 5);
  const std::string csv = recorder.ToCsv();
  std::istringstream lines(csv);
  std::string line;
  std::size_t count = 0;
  std::size_t columns = 0;
  while (std::getline(lines, line)) {
    if (count == 0) {
      EXPECT_EQ(line.find("round,time,objects_stored"), 0u);
      columns = static_cast<std::size_t>(
          std::count(line.begin(), line.end(), ',') + 1);
    } else {
      EXPECT_EQ(static_cast<std::size_t>(
                    std::count(line.begin(), line.end(), ',') + 1),
                columns)
          << line;
    }
    ++count;
  }
  EXPECT_EQ(count, 6u);  // header + 5 samples
  recorder.clear();
  EXPECT_TRUE(recorder.samples().empty());
}

}  // namespace
}  // namespace dgc
