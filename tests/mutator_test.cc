// Tests for mutator sessions: RPC plumbing, application roots, reference
// arrival cases 1-4 of Section 6.1.2, the insert barrier, and the transfer
// barrier as driven by real mutator traffic.
#include <gtest/gtest.h>

#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  return config;
}

TEST(SessionTest, CreateHoldsAndKeepsAlive) {
  System system(2, Config());
  Session session(system, 0, 1);
  const ObjectId obj = session.Create(2);
  EXPECT_TRUE(session.Holds(obj));
  system.RunRounds(2);
  EXPECT_TRUE(system.ObjectExists(obj));
}

TEST(SessionTest, LocalReadWritePlumbsSlots) {
  System system(1, Config());
  Session session(system, 0, 1);
  const ObjectId a = session.Create(1);
  const ObjectId b = session.Create(0);
  session.Write(a, 0, b);
  EXPECT_EQ(session.Read(a, 0), b);
}

TEST(SessionTest, ReadOfNullSlotReturnsInvalid) {
  System system(1, Config());
  Session session(system, 0, 1);
  const ObjectId a = session.Create(1);
  EXPECT_EQ(session.Read(a, 0), kInvalidObject);
}

TEST(SessionTest, RemoteReadTransfersAndPins) {
  System system(2, Config());
  const ObjectId remote_container = system.NewObject(1, 1);
  const ObjectId remote_value = system.NewObject(1, 0);
  system.Wire(remote_container, 0, remote_value);
  workload::TetherToRoot(system, remote_container, 1);

  Session session(system, 0, 1);
  session.LoadRoot(remote_container);
  const ObjectId value = session.Read(remote_container, 0);
  EXPECT_EQ(value, remote_value);
  // Holding a remote ref created a pinned outref at home + an inref source
  // at the owner (case 4 + insert protocol).
  const OutrefEntry* outref = system.site(0).tables().FindOutref(remote_value);
  ASSERT_NE(outref, nullptr);
  EXPECT_GT(outref->pin_count, 0);
  EXPECT_TRUE(outref->clean());
  const InrefEntry* inref = system.site(1).tables().FindInref(remote_value);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(0));
}

TEST(SessionTest, RemoteWriteStoresValue) {
  System system(3, Config());
  const ObjectId container = system.NewObject(1, 1);
  workload::TetherToRoot(system, container, 1);
  const ObjectId target = system.NewObject(2, 0);
  workload::TetherToRoot(system, target, 2);

  Session session(system, 0, 1);
  session.LoadRoot(container);
  session.LoadRoot(target);
  session.Write(container, 0, target);
  EXPECT_EQ(system.site(1).heap().GetSlot(container, 0), target);
  // Site 1 now holds a reference to target@2: outref + inref source exist.
  EXPECT_NE(system.site(1).tables().FindOutref(target), nullptr);
  const InrefEntry* inref = system.site(2).tables().FindInref(target);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(1));
}

TEST(SessionTest, WriteOfUnheldReferenceRejected) {
  System system(1, Config());
  Session session(system, 0, 1);
  const ObjectId a = session.Create(1);
  const ObjectId stranger{0, 999};
  EXPECT_THROW(session.Write(a, 0, stranger), InvariantViolation);
}

TEST(SessionTest, ReadOfUnheldReferenceRejected) {
  System system(2, Config());
  const ObjectId remote = system.NewObject(1, 1);
  workload::TetherToRoot(system, remote, 1);
  Session session(system, 0, 1);
  // The session never traversed a path to `remote`.
  EXPECT_THROW(session.Read(remote, 0), InvariantViolation);
}

TEST(SessionTest, ReadReplyRetentionIsReleasedAfterRecording) {
  // The serving site retains a served reference (§2) only until the
  // requester records it; afterwards no pins or extra roots remain.
  System system(3, Config());
  const ObjectId container = system.NewObject(1, 1);
  workload::TetherToRoot(system, container, 1);
  const ObjectId value = system.NewObject(2, 0);
  workload::TetherToRoot(system, value, 2);
  system.Wire(container, 0, value);
  system.RunRound();

  Session session(system, 0, 1);
  session.LoadRoot(container);
  const ObjectId got = session.Read(container, 0);
  EXPECT_EQ(got, value);
  system.SettleNetwork();
  // Site 1 served `value` (remote to it): its outref pin must be back to 0.
  EXPECT_EQ(system.site(1).tables().FindOutref(value)->pin_count, 0);
  // The session's own pin at site 0 holds it.
  EXPECT_GT(system.site(0).tables().FindOutref(value)->pin_count, 0);
  session.ReleaseAll();
  system.SettleNetwork();
  EXPECT_EQ(system.site(0).tables().FindOutref(value)->pin_count, 0);
}

TEST(SessionTest, OwnObjectServedRetentionIsReleased) {
  // Owner-served case: site 1 self-roots its own object while the reply and
  // the requester's insert are in flight, then releases.
  System system(2, Config());
  const ObjectId container = system.NewObject(1, 1);
  workload::TetherToRoot(system, container, 1);
  const ObjectId value = system.NewObject(1, 0);
  system.Wire(container, 0, value);
  system.RunRound();

  Session session(system, 0, 1);
  session.LoadRoot(container);
  const ObjectId got = session.Read(container, 0);
  EXPECT_EQ(got, value);
  system.SettleNetwork();
  // Self-retention released: `value` is no longer an app root at site 1.
  EXPECT_FALSE(system.site(1).IsRootObject(value));
  // But it is properly registered for the session's pin at site 0.
  const InrefEntry* inref = system.site(1).tables().FindInref(value);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(0));
}

TEST(SessionTest, ReleaseAllowsCollection) {
  System system(2, Config());
  Session session(system, 0, 1);
  const ObjectId obj = session.Create(0);
  session.ReleaseAll();
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(obj));
}

TEST(SessionTest, SessionOnSecondSiteKeepsRemoteObjectAlive) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId tether = workload::TetherToRoot(system, obj, 1);
  Session session(system, 0, 1);
  session.LoadRoot(obj);
  system.Unwire(tether, 0);  // only the session holds it now
  system.RunRounds(4);
  EXPECT_TRUE(system.ObjectExists(obj));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  session.Release(obj);
  system.RunRounds(3);
  EXPECT_FALSE(system.ObjectExists(obj));
}

TEST(InsertBarrierTest, NewOutrefStaysPinnedUntilAck) {
  // Slow network: observe the pin while the insert is in flight.
  NetworkConfig net;
  net.latency = 50;
  System system(3, Config(), net);
  const ObjectId container = system.NewObject(1, 1);
  workload::TetherToRoot(system, container, 1);
  const ObjectId target = system.NewObject(2, 0);
  workload::TetherToRoot(system, target, 2);

  Session session(system, 0, 1);
  session.LoadRoot(container);
  session.LoadRoot(target);

  bool write_done = false;
  session.StartWrite(container, 0, target, [&] { write_done = true; });
  // Run until site 1 has created its outref but the insert ack is pending.
  system.scheduler().RunUntil(system.scheduler().now() + 120);
  const OutrefEntry* outref = system.site(1).tables().FindOutref(target);
  ASSERT_NE(outref, nullptr);
  EXPECT_GT(outref->pin_count, 0);  // insert barrier holds it clean
  EXPECT_TRUE(outref->clean());
  EXPECT_FALSE(write_done);  // synchronous insert: ack gates completion
  system.SettleNetwork();
  EXPECT_TRUE(write_done);
  EXPECT_EQ(outref->pin_count, 0);  // released by the ack
  EXPECT_TRUE(outref->clean_override);  // stays clean until next trace
}

TEST(TransferBarrierTest, ArrivalCleansSuspectedInrefAndOutset) {
  // Ripen a two-site cycle into suspicion, then have a mutator traverse a
  // reference to one of its objects: the barrier must clean the inref and
  // the outrefs in its outset.
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  // Keep the cycle alive from a distant root chain so the mutator may
  // legitimately hold a reference while distances are high.
  const ObjectId far_root = system.NewObject(2, 1);
  system.SetPersistentRoot(far_root);
  const ObjectId hop1 = system.NewObject(0, 1);
  const ObjectId hop2 = system.NewObject(1, 1);
  const ObjectId hop3 = system.NewObject(2, 1);
  system.Wire(far_root, 0, hop1);
  system.Wire(hop1, 0, hop2);
  system.Wire(hop2, 0, hop3);
  system.Wire(hop3, 0, cycle.objects[0]);
  system.RunRounds(6);

  const InrefEntry* inref =
      system.site(0).tables().FindInref(cycle.objects[0]);
  ASSERT_NE(inref, nullptr);
  ASSERT_FALSE(inref->clean(config.suspicion_threshold))
      << "test setup: inref should be suspected (distance "
      << inref->distance() << ")";
  const OutrefEntry* outref =
      system.site(0).tables().FindOutref(cycle.objects[1]);
  ASSERT_NE(outref, nullptr);
  ASSERT_FALSE(outref->clean());

  // The mutator "transfers" the reference to site 0 (e.g. as an RPC target).
  system.site(0).ApplyTransferBarrier(cycle.objects[0]);
  EXPECT_TRUE(inref->clean(config.suspicion_threshold));
  EXPECT_TRUE(outref->clean()) << "outset member must be cleaned too";
  EXPECT_GE(system.site(0).stats().transfer_barrier_hits, 1u);

  // The next local trace recomputes cleanliness from distances: overrides
  // drop again (nothing actually changed reachability).
  system.RunRound();
  EXPECT_FALSE(
      system.site(0).tables().FindInref(cycle.objects[0])->clean(2));
}

TEST(TransferBarrierTest, CleanInrefArrivalIsNoop) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 0);
  system.RunRounds(2);
  const auto hits_before = system.site(1).stats().transfer_barrier_hits;
  system.site(1).ApplyTransferBarrier(obj);
  EXPECT_EQ(system.site(1).stats().transfer_barrier_hits, hits_before);
}

TEST(ReceiveReferenceTest, Case2CleanOutrefNothingHappens) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 0);
  system.RunRounds(2);  // outref at 0 is traced clean
  bool done = false;
  system.site(0).ReceiveReference(obj, [&] { done = true; });
  EXPECT_TRUE(done);  // immediate: no insert traffic
  EXPECT_EQ(system.site(0).tables().FindOutref(obj)->pin_count, 0);
}

TEST(ReceiveReferenceTest, Case3SuspectedOutrefCleaned) {
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(2, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(6);
  OutrefEntry* outref = system.site(0).tables().FindOutref(cycle.objects[1]);
  ASSERT_NE(outref, nullptr);
  ASSERT_FALSE(outref->clean());
  bool done = false;
  system.site(0).ReceiveReference(cycle.objects[1], [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_TRUE(outref->clean());
}

TEST(SessionTest, CrossSessionHandoffThroughSharedObject) {
  // Session A publishes an object into a shared rooted container; session B
  // (other site) picks it up; A releases; object must survive via B.
  System system(2, Config());
  const ObjectId shared = system.NewObject(0, 1);
  workload::TetherToRoot(system, shared, 0);

  Session a(system, 0, 1);
  Session b(system, 1, 2);
  a.LoadRoot(shared);
  const ObjectId payload = a.Create(0);
  a.Write(shared, 0, payload);
  a.ReleaseAll();

  b.LoadRoot(shared);
  const ObjectId got = b.Read(shared, 0);
  EXPECT_EQ(got, payload);
  // Unpublish; only B's variable holds it now.
  Session unpublisher(system, 0, 3);
  unpublisher.LoadRoot(shared);
  unpublisher.Write(shared, 0, kInvalidObject);
  system.RunRounds(4);
  EXPECT_TRUE(system.ObjectExists(payload));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  b.Release(got);
  system.RunRounds(4);
  EXPECT_FALSE(system.ObjectExists(payload));
}

}  // namespace
}  // namespace dgc
