// Unit tests for the simulated network: FIFO channels, fault injection,
// self-delivery, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace dgc {
namespace {

struct NetFixture : ::testing::Test {
  Scheduler scheduler;
  NetworkConfig config;
  std::vector<std::vector<Envelope>> received;

  std::unique_ptr<Network> MakeNetwork(std::size_t sites) {
    auto network = std::make_unique<Network>(scheduler, config, Rng(1));
    received.resize(sites);
    for (SiteId s = 0; s < sites; ++s) {
      network->RegisterSite(s, [this, s](const Envelope& envelope) {
        received[s].push_back(envelope);
      });
    }
    return network;
  }

  static Payload Probe(std::uint64_t value) {
    return GlobalGcControlMsg{value, GlobalGcControlMsg::Phase::kProbe, value};
  }
  static std::uint64_t ProbeValue(const Envelope& envelope) {
    return std::get<GlobalGcControlMsg>(envelope.payload).value;
  }
};

TEST_F(NetFixture, DeliversWithLatency) {
  config.latency = 7;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(42));
  EXPECT_TRUE(received[1].empty());
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(ProbeValue(received[1][0]), 42u);
  EXPECT_EQ(scheduler.now(), 7);
}

TEST_F(NetFixture, PerChannelFifoUnderJitter) {
  config.latency = 5;
  config.latency_jitter = 50;
  auto net = MakeNetwork(2);
  for (std::uint64_t i = 0; i < 100; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
}

TEST_F(NetFixture, SelfDeliveryIsAsynchronousAndUncounted) {
  auto net = MakeNetwork(1);
  net->Send(0, 0, Probe(1));
  EXPECT_TRUE(received[0].empty());  // not synchronous
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[0].size(), 1u);
  EXPECT_EQ(net->stats().inter_site_sent, 0u);
  EXPECT_EQ(net->stats().self_deliveries, 1u);
}

TEST_F(NetFixture, DownSiteDropsTraffic) {
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 1u);
  net->SetSiteDown(1, false);
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, CrashAfterSendLosesInFlightMessage) {
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntil(5);
  net->SetSiteDown(1, true);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 1u);
}

TEST_F(NetFixture, SeveredLinkIsBidirectionalAndRestorable) {
  auto net = MakeNetwork(3);
  net->SetLinkDown(0, 1, true);
  net->Send(0, 1, Probe(1));
  net->Send(1, 0, Probe(2));
  net->Send(0, 2, Probe(3));  // unrelated link unaffected
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_TRUE(received[0].empty());
  EXPECT_EQ(received[2].size(), 1u);
  net->SetLinkDown(0, 1, false);
  net->Send(0, 1, Probe(4));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, LossInjectionDropsApproximateFraction) {
  config.drop_probability = 0.3;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 1000; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_GT(received[1].size(), 600u);
  EXPECT_LT(received[1].size(), 800u);
  EXPECT_EQ(received[1].size() + net->stats().dropped, 1000u);
}

TEST_F(NetFixture, PerKindCountersAndBytes) {
  auto net = MakeNetwork(2);
  net->Send(0, 1, InsertMsg{ObjectId{1, 1}, 0, 0});
  net->Send(0, 1, InsertMsg{ObjectId{1, 2}, 0, 0});
  net->Send(0, 1, BackReportMsg{TraceId{0, 1}, BackResult::kLive});
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().count_of<InsertMsg>(), 2u);
  EXPECT_EQ(net->stats().count_of<BackReportMsg>(), 1u);
  EXPECT_EQ(net->stats().count_of<UpdateMsg>(), 0u);
  EXPECT_GT(net->stats().approx_bytes, 0u);
}

TEST_F(NetFixture, InFlightTracksUndeliveredMessages) {
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  net->Send(0, 1, Probe(2));
  EXPECT_EQ(net->in_flight(), 2u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, WithoutBatchingWireEqualsLogical) {
  auto net = MakeNetwork(2);
  for (int i = 0; i < 10; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().inter_site_sent, 10u);
  EXPECT_EQ(net->stats().wire_messages, 10u);
}

TEST_F(NetFixture, BatchingCoalescesAWindowIntoOneWireMessage) {
  config.batch_window = 10;
  config.latency = 5;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 10; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 10u);
  EXPECT_EQ(net->stats().inter_site_sent, 10u);   // logical count unchanged
  EXPECT_EQ(net->stats().wire_messages, 1u);      // one piggybacked batch
  EXPECT_LT(net->stats().wire_bytes, net->stats().approx_bytes);
  // Delivery order within the batch preserved.
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
}

TEST_F(NetFixture, BatchingDelaysDeliveryByTheWindow) {
  config.batch_window = 10;
  config.latency = 5;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntil(14);  // window (10) + latency (5) not yet elapsed
  EXPECT_TRUE(received[1].empty());
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_EQ(scheduler.now(), 15);
}

TEST_F(NetFixture, SeparateWindowsSeparateBatches) {
  config.batch_window = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();  // first window flushes
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().wire_messages, 2u);
  EXPECT_EQ(received[1].size(), 2u);
}

TEST_F(NetFixture, BatchesPerChannelNotPerSitePair) {
  config.batch_window = 10;
  auto net = MakeNetwork(3);
  net->Send(0, 1, Probe(1));
  net->Send(0, 2, Probe(2));
  net->Send(1, 0, Probe(3));  // reverse direction = its own channel
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().wire_messages, 3u);
}

TEST_F(NetFixture, DroppedBatchLosesAllContents) {
  config.batch_window = 10;
  config.drop_probability = 1.0;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 5u);
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, BatchingPreservesCrossBatchFifo) {
  config.batch_window = 7;
  config.latency = 5;
  config.latency_jitter = 40;
  auto net = MakeNetwork(2);
  for (std::uint64_t i = 0; i < 30; ++i) {
    net->Send(0, 1, Probe(i));
    scheduler.RunUntil(scheduler.now() + 3);  // spread across several windows
  }
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
  EXPECT_GT(net->stats().wire_messages, 1u);
  EXPECT_LT(net->stats().wire_messages, 30u);
}

TEST_F(NetFixture, FlushedBatchEntriesAreErasedNotParked) {
  config.batch_window = 10;
  auto net = MakeNetwork(3);
  net->Send(0, 1, Probe(1));
  net->Send(0, 2, Probe(2));
  EXPECT_EQ(net->pending_batch_channels(), 2u);
  scheduler.RunUntilIdle();
  // Flushing removes the channel entry entirely; the map tracks channels
  // with an open window, not every pair that ever talked.
  EXPECT_EQ(net->pending_batch_channels(), 0u);
  net->Send(0, 1, Probe(3));  // re-creates the entry and re-arms the timer
  EXPECT_EQ(net->pending_batch_channels(), 1u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->pending_batch_channels(), 0u);
  EXPECT_EQ(received[1].size(), 2u);
  EXPECT_EQ(received[2].size(), 1u);
}

TEST_F(NetFixture, InertFifoClampEntriesArePurgedPeriodically) {
  config.latency = 3;
  auto net = MakeNetwork(2);
  // Talk on both directions, then let everything deliver: both clamp
  // entries are now inert (last delivery <= now).
  net->Send(0, 1, Probe(1));
  net->Send(1, 0, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->channel_clamp_entries(), 2u);
  // Drive one channel past the purge period; the idle channels' inert
  // entries must be swept rather than retained forever.
  for (std::uint64_t i = 0; i < Network::kChannelPurgePeriod + 1; ++i) {
    net->Send(0, 1, Probe(i));
    scheduler.RunUntilIdle();
  }
  EXPECT_LE(net->channel_clamp_entries(), 1u);
}

// --- Fault bookkeeping -----------------------------------------------------

TEST_F(NetFixture, RestoringFaultsErasesDownEntries) {
  auto net = MakeNetwork(4);
  EXPECT_EQ(net->site_down_entries(), 0u);
  EXPECT_EQ(net->link_down_entries(), 0u);
  // Fault and heal every site and several links: the down-sets must track
  // only *currently* faulted entities, not every one ever faulted.
  for (SiteId s = 0; s < 4; ++s) {
    net->SetSiteDown(s, true);
    net->SetLinkDown(s, (s + 1) % 4, true);
  }
  EXPECT_EQ(net->site_down_entries(), 4u);
  EXPECT_EQ(net->link_down_entries(), 4u);
  for (SiteId s = 0; s < 4; ++s) {
    net->SetSiteDown(s, false);
    net->SetLinkDown(s, (s + 1) % 4, false);
  }
  EXPECT_EQ(net->site_down_entries(), 0u);
  EXPECT_EQ(net->link_down_entries(), 0u);
  // Redundant restores stay no-ops.
  net->SetSiteDown(2, false);
  net->SetLinkDown(0, 1, false);
  EXPECT_EQ(net->site_down_entries(), 0u);
  EXPECT_EQ(net->link_down_entries(), 0u);
  EXPECT_FALSE(net->IsSiteDown(2));
  EXPECT_FALSE(net->IsLinkDown(0, 1));
}

// --- Reliable channels -----------------------------------------------------

TEST_F(NetFixture, ReliableDeliveryRecoversEveryLoss) {
  config.reliable_delivery = true;
  config.drop_probability = 0.3;
  config.max_retransmit_attempts = 16;  // headroom: no entry may exhaust
  auto net = MakeNetwork(2);
  for (int i = 0; i < 500; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
  EXPECT_EQ(net->stats().dropped, 0u);
  EXPECT_GT(net->stats().retransmits, 0u);
  EXPECT_GT(net->stats().transmissions_lost, 0u);
  EXPECT_EQ(net->in_flight(), 0u);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
}

TEST_F(NetFixture, ReliableDeliveryPreservesFifoUnderLossAndJitter) {
  config.reliable_delivery = true;
  config.drop_probability = 0.25;
  config.max_retransmit_attempts = 16;
  config.latency_jitter = 30;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 200; ++i) {
    net->Send(0, 1, Probe(i));
    net->Send(1, 0, Probe(1000 + i));
  }
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 200u);
  ASSERT_EQ(received[0].size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
    EXPECT_EQ(ProbeValue(received[0][i]), 1000 + i);
  }
}

TEST_F(NetFixture, ReliableDeliveryIsExactlyOnce) {
  // Heavy ack loss forces duplicate transmissions; the receiver must
  // suppress every duplicate.
  config.reliable_delivery = true;
  config.drop_probability = 0.5;
  config.max_retransmit_attempts = 24;  // headroom: no entry may exhaust
  auto net = MakeNetwork(2);
  for (int i = 0; i < 100; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 100u);
  EXPECT_GT(net->stats().dup_suppressed, 0u);
  EXPECT_EQ(net->stats().inter_site_delivered, 100u);
}

TEST_F(NetFixture, ReliableLosslessPathSendsNoRetransmits) {
  config.reliable_delivery = true;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 50; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 50u);
  EXPECT_EQ(net->stats().retransmits, 0u);
  EXPECT_EQ(net->stats().dup_suppressed, 0u);
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, ReliableRetransmitBudgetBoundsOutage) {
  // A permanently-down receiver must not retain sender state forever: the
  // attempt budget exhausts and the payloads are accounted dropped.
  config.reliable_delivery = true;
  config.max_retransmit_attempts = 3;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 5u);
  EXPECT_GT(net->stats().retransmits_exhausted, 0u);
  EXPECT_EQ(net->in_flight(), 0u);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
}

TEST_F(NetFixture, ChannelUnwedgesAfterRetransmitExhaustion) {
  // An abandoned wire message must not wedge the channel: once the budget
  // for seq N exhausts, later messages carry base_seq past the gap and the
  // receiver skips it instead of stashing everything after N forever.
  config.reliable_delivery = true;
  config.max_retransmit_attempts = 2;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  net->Send(0, 1, Probe(7));  // every attempt lands on a downed receiver
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().dropped, 1u);
  EXPECT_GT(net->stats().retransmits_exhausted, 0u);
  net->SetSiteDown(1, false);
  for (int i = 0; i < 3; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
  EXPECT_EQ(net->stats().dropped, 1u);  // only the abandoned probe
  EXPECT_EQ(net->in_flight(), 0u);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
}

TEST_F(NetFixture, ReliableDeliveryResumesAfterOutage) {
  config.reliable_delivery = true;
  config.latency = 5;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntil(40);  // a few failed attempts, budget not exhausted
  EXPECT_TRUE(received[1].empty());
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
  EXPECT_EQ(net->stats().dropped, 0u);
}

// --- Incarnations ----------------------------------------------------------

TEST_F(NetFixture, RestartRejectsStaleInFlightTraffic) {
  config.reliable_delivery = true;
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));  // in flight when site 1 restarts
  scheduler.RunUntil(5);
  net->NoteSiteRestarted(1);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_GE(net->stats().stale_incarnation_rejected, 1u);
  EXPECT_EQ(net->incarnation(1), 1u);
  EXPECT_EQ(net->in_flight(), 0u);
  // Post-restart traffic flows normally in the fresh sequence space.
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(ProbeValue(received[1][0]), 2u);
}

TEST_F(NetFixture, RestartDeadLettersUnackedChannels) {
  config.reliable_delivery = true;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);  // transmissions fail, entries accumulate
  for (int i = 0; i < 4; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntil(10);
  EXPECT_GT(net->unacked_wire_messages(), 0u);
  net->NoteSiteRestarted(1);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
  EXPECT_EQ(net->stats().dropped, 4u);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());  // dead-lettered, not resurrected
  EXPECT_EQ(net->in_flight(), 0u);
}

// --- Failure detection -----------------------------------------------------

TEST_F(NetFixture, FailureDetectorSuspectsAfterTimeoutAndRecovers) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  config.latency = 5;
  auto net = MakeNetwork(3);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
  net->SetSiteDown(1, true);
  scheduler.RunUntil(20);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1)) << "suspected before timeout";
  scheduler.RunUntil(45);
  EXPECT_TRUE(net->IsPeerSuspected(0, 1));
  EXPECT_TRUE(net->IsPeerSuspected(2, 1)) << "every observer suspects";
  EXPECT_FALSE(net->IsPeerSuspected(0, 2)) << "healthy peer not suspected";
  net->SetSiteDown(1, false);
  // Suspicion lingers for one heartbeat period + round trip after heal.
  EXPECT_TRUE(net->IsPeerSuspected(0, 1));
  scheduler.RunUntil(scheduler.now() + 10 + 2 * 5 + 1);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
  EXPECT_EQ(net->stats().fd_suspicions, 1u);
}

TEST_F(NetFixture, FailureDetectorMissesShortOutages) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  scheduler.RunUntil(20);
  net->SetSiteDown(1, false);
  scheduler.RunUntil(100);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
  EXPECT_EQ(net->stats().fd_suspicions, 0u);
}

TEST_F(NetFixture, FailureDetectorSeesLinkFaultsPerObserver) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  auto net = MakeNetwork(3);
  net->SetLinkDown(0, 1, true);
  scheduler.RunUntil(50);
  EXPECT_TRUE(net->IsPeerSuspected(0, 1));
  EXPECT_TRUE(net->IsPeerSuspected(1, 0));
  EXPECT_FALSE(net->IsPeerSuspected(2, 1)) << "link fault is local to a pair";
  net->SetLinkDown(0, 1, false);
  scheduler.RunUntilIdle();
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
}

TEST_F(NetFixture, RecoveryListenersFireAfterDetectedOutageHeals) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  config.latency = 5;
  auto net = MakeNetwork(3);
  std::vector<std::pair<SiteId, SiteId>> notified;  // (observer, peer)
  net->SetRecoveryListener(
      0, [&](SiteId peer) { notified.emplace_back(0, peer); });
  net->SetRecoveryListener(
      2, [&](SiteId peer) { notified.emplace_back(2, peer); });
  // Undetected short outage: no notification.
  net->SetSiteDown(1, true);
  scheduler.RunUntil(10);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(notified.empty());
  // Detected outage: every *other* observer hears about the heal.
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(notified.size(), 2u);
  EXPECT_EQ(notified[0], (std::pair<SiteId, SiteId>{0, 1}));
  EXPECT_EQ(notified[1], (std::pair<SiteId, SiteId>{2, 1}));
  EXPECT_EQ(net->stats().fd_recoveries, 1u);
}

TEST_F(NetFixture, RestartErasesRecoveryListenerUntilReRegistered) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  config.latency = 5;
  auto net = MakeNetwork(3);
  std::vector<SiteId> notified;
  net->SetRecoveryListener(0, [&](SiteId peer) { notified.push_back(peer); });
  EXPECT_EQ(net->recovery_listener_entries(), 1u);
  // A restart dead-letters the old incarnation's connection state; its
  // recovery listener must go with it, not fire on the new incarnation's
  // behalf.
  net->NoteSiteRestarted(0);
  EXPECT_EQ(net->recovery_listener_entries(), 0u);
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);  // detected outage
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(notified.empty()) << "stale listener fired after restart";
  // The new incarnation subscribes afresh and hears the next heal.
  net->SetRecoveryListener(0, [&](SiteId peer) { notified.push_back(peer); });
  EXPECT_EQ(net->recovery_listener_entries(), 1u);
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], 1u);
}

TEST_F(NetFixture, RetiredBatchBuffersArePooledAndReused) {
  config.batch_window = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();  // batch delivered, its buffer retired to the pool
  EXPECT_EQ(net->batch_pool_size(), 1u);
  EXPECT_EQ(net->batch_pool_hits(), 0u);
  net->Send(0, 1, Probe(2));  // new window takes the pooled allocation
  EXPECT_EQ(net->batch_pool_size(), 0u);
  EXPECT_EQ(net->batch_pool_hits(), 1u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->batch_pool_size(), 1u);
  EXPECT_EQ(received[1].size(), 2u);
}

TEST(PayloadTest, KindNamesCoverAllAlternatives) {
  for (std::size_t i = 0; i < kPayloadKinds; ++i) {
    EXPECT_NE(PayloadKindName(i), nullptr);
    EXPECT_GT(std::string(PayloadKindName(i)).size(), 0u);
  }
}

TEST(PayloadTest, WireSizeScalesWithContent) {
  UpdateMsg small{{UpdateEntry{ObjectId{1, 1}, false, 3}}};
  UpdateMsg big;
  for (int i = 0; i < 50; ++i) {
    big.entries.push_back(UpdateEntry{ObjectId{1, (std::uint64_t)i}, false, 3});
  }
  EXPECT_LT(ApproxWireSize(small), ApproxWireSize(big));
}

}  // namespace
}  // namespace dgc
