// Unit tests for the simulated network: FIFO channels, fault injection,
// self-delivery, statistics — plus the socket transport's wire codec
// (framing, payload round-trips, handshake classification).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "net/wire.h"
#include "sim/scheduler.h"

namespace dgc {
namespace {

struct NetFixture : ::testing::Test {
  Scheduler scheduler;
  NetworkConfig config;
  std::vector<std::vector<Envelope>> received;

  std::unique_ptr<Network> MakeNetwork(std::size_t sites) {
    auto network = std::make_unique<Network>(scheduler, config, Rng(1));
    received.resize(sites);
    for (SiteId s = 0; s < sites; ++s) {
      network->RegisterSite(s, [this, s](const Envelope& envelope) {
        received[s].push_back(envelope);
      });
    }
    return network;
  }

  static Payload Probe(std::uint64_t value) {
    return GlobalGcControlMsg{value, GlobalGcControlMsg::Phase::kProbe, value};
  }
  static std::uint64_t ProbeValue(const Envelope& envelope) {
    return std::get<GlobalGcControlMsg>(envelope.payload).value;
  }
};

TEST_F(NetFixture, DeliversWithLatency) {
  config.latency = 7;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(42));
  EXPECT_TRUE(received[1].empty());
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(ProbeValue(received[1][0]), 42u);
  EXPECT_EQ(scheduler.now(), 7);
}

TEST_F(NetFixture, PerChannelFifoUnderJitter) {
  config.latency = 5;
  config.latency_jitter = 50;
  auto net = MakeNetwork(2);
  for (std::uint64_t i = 0; i < 100; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
}

TEST_F(NetFixture, SelfDeliveryIsAsynchronousAndUncounted) {
  auto net = MakeNetwork(1);
  net->Send(0, 0, Probe(1));
  EXPECT_TRUE(received[0].empty());  // not synchronous
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[0].size(), 1u);
  EXPECT_EQ(net->stats().inter_site_sent, 0u);
  EXPECT_EQ(net->stats().self_deliveries, 1u);
}

TEST_F(NetFixture, DownSiteDropsTraffic) {
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 1u);
  net->SetSiteDown(1, false);
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, CrashAfterSendLosesInFlightMessage) {
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntil(5);
  net->SetSiteDown(1, true);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 1u);
}

TEST_F(NetFixture, SeveredLinkIsBidirectionalAndRestorable) {
  auto net = MakeNetwork(3);
  net->SetLinkDown(0, 1, true);
  net->Send(0, 1, Probe(1));
  net->Send(1, 0, Probe(2));
  net->Send(0, 2, Probe(3));  // unrelated link unaffected
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_TRUE(received[0].empty());
  EXPECT_EQ(received[2].size(), 1u);
  net->SetLinkDown(0, 1, false);
  net->Send(0, 1, Probe(4));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, LossInjectionDropsApproximateFraction) {
  config.drop_probability = 0.3;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 1000; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_GT(received[1].size(), 600u);
  EXPECT_LT(received[1].size(), 800u);
  EXPECT_EQ(received[1].size() + net->stats().dropped, 1000u);
}

TEST_F(NetFixture, PerKindCountersAndBytes) {
  auto net = MakeNetwork(2);
  net->Send(0, 1, InsertMsg{ObjectId{1, 1}, 0, 0});
  net->Send(0, 1, InsertMsg{ObjectId{1, 2}, 0, 0});
  net->Send(0, 1, BackReportMsg{TraceId{0, 1}, BackResult::kLive});
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().count_of<InsertMsg>(), 2u);
  EXPECT_EQ(net->stats().count_of<BackReportMsg>(), 1u);
  EXPECT_EQ(net->stats().count_of<UpdateMsg>(), 0u);
  EXPECT_GT(net->stats().approx_bytes, 0u);
}

TEST_F(NetFixture, InFlightTracksUndeliveredMessages) {
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  net->Send(0, 1, Probe(2));
  EXPECT_EQ(net->in_flight(), 2u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, WithoutBatchingWireEqualsLogical) {
  auto net = MakeNetwork(2);
  for (int i = 0; i < 10; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().inter_site_sent, 10u);
  EXPECT_EQ(net->stats().wire_messages, 10u);
}

TEST_F(NetFixture, BatchingCoalescesAWindowIntoOneWireMessage) {
  config.batch_window = 10;
  config.latency = 5;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 10; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 10u);
  EXPECT_EQ(net->stats().inter_site_sent, 10u);   // logical count unchanged
  EXPECT_EQ(net->stats().wire_messages, 1u);      // one piggybacked batch
  EXPECT_LT(net->stats().wire_bytes, net->stats().approx_bytes);
  // Delivery order within the batch preserved.
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
}

TEST_F(NetFixture, BatchingDelaysDeliveryByTheWindow) {
  config.batch_window = 10;
  config.latency = 5;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntil(14);  // window (10) + latency (5) not yet elapsed
  EXPECT_TRUE(received[1].empty());
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_EQ(scheduler.now(), 15);
}

TEST_F(NetFixture, SeparateWindowsSeparateBatches) {
  config.batch_window = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();  // first window flushes
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().wire_messages, 2u);
  EXPECT_EQ(received[1].size(), 2u);
}

TEST_F(NetFixture, BatchesPerChannelNotPerSitePair) {
  config.batch_window = 10;
  auto net = MakeNetwork(3);
  net->Send(0, 1, Probe(1));
  net->Send(0, 2, Probe(2));
  net->Send(1, 0, Probe(3));  // reverse direction = its own channel
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().wire_messages, 3u);
}

TEST_F(NetFixture, DroppedBatchLosesAllContents) {
  config.batch_window = 10;
  config.drop_probability = 1.0;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 5u);
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, BatchingPreservesCrossBatchFifo) {
  config.batch_window = 7;
  config.latency = 5;
  config.latency_jitter = 40;
  auto net = MakeNetwork(2);
  for (std::uint64_t i = 0; i < 30; ++i) {
    net->Send(0, 1, Probe(i));
    scheduler.RunUntil(scheduler.now() + 3);  // spread across several windows
  }
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
  EXPECT_GT(net->stats().wire_messages, 1u);
  EXPECT_LT(net->stats().wire_messages, 30u);
}

TEST_F(NetFixture, FlushedBatchEntriesAreErasedNotParked) {
  config.batch_window = 10;
  auto net = MakeNetwork(3);
  net->Send(0, 1, Probe(1));
  net->Send(0, 2, Probe(2));
  EXPECT_EQ(net->pending_batch_channels(), 2u);
  scheduler.RunUntilIdle();
  // Flushing removes the channel entry entirely; the map tracks channels
  // with an open window, not every pair that ever talked.
  EXPECT_EQ(net->pending_batch_channels(), 0u);
  net->Send(0, 1, Probe(3));  // re-creates the entry and re-arms the timer
  EXPECT_EQ(net->pending_batch_channels(), 1u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->pending_batch_channels(), 0u);
  EXPECT_EQ(received[1].size(), 2u);
  EXPECT_EQ(received[2].size(), 1u);
}

TEST_F(NetFixture, InertFifoClampEntriesArePurgedPeriodically) {
  config.latency = 3;
  auto net = MakeNetwork(2);
  // Talk on both directions, then let everything deliver: both clamp
  // entries are now inert (last delivery <= now).
  net->Send(0, 1, Probe(1));
  net->Send(1, 0, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->channel_clamp_entries(), 2u);
  // Drive one channel past the purge period; the idle channels' inert
  // entries must be swept rather than retained forever.
  for (std::uint64_t i = 0; i < Network::kChannelPurgePeriod + 1; ++i) {
    net->Send(0, 1, Probe(i));
    scheduler.RunUntilIdle();
  }
  EXPECT_LE(net->channel_clamp_entries(), 1u);
}

// --- Fault bookkeeping -----------------------------------------------------

TEST_F(NetFixture, RestoringFaultsErasesDownEntries) {
  auto net = MakeNetwork(4);
  EXPECT_EQ(net->site_down_entries(), 0u);
  EXPECT_EQ(net->link_down_entries(), 0u);
  // Fault and heal every site and several links: the down-sets must track
  // only *currently* faulted entities, not every one ever faulted.
  for (SiteId s = 0; s < 4; ++s) {
    net->SetSiteDown(s, true);
    net->SetLinkDown(s, (s + 1) % 4, true);
  }
  EXPECT_EQ(net->site_down_entries(), 4u);
  EXPECT_EQ(net->link_down_entries(), 4u);
  for (SiteId s = 0; s < 4; ++s) {
    net->SetSiteDown(s, false);
    net->SetLinkDown(s, (s + 1) % 4, false);
  }
  EXPECT_EQ(net->site_down_entries(), 0u);
  EXPECT_EQ(net->link_down_entries(), 0u);
  // Redundant restores stay no-ops.
  net->SetSiteDown(2, false);
  net->SetLinkDown(0, 1, false);
  EXPECT_EQ(net->site_down_entries(), 0u);
  EXPECT_EQ(net->link_down_entries(), 0u);
  EXPECT_FALSE(net->IsSiteDown(2));
  EXPECT_FALSE(net->IsLinkDown(0, 1));
}

// --- Reliable channels -----------------------------------------------------

TEST_F(NetFixture, ReliableDeliveryRecoversEveryLoss) {
  config.reliable_delivery = true;
  config.drop_probability = 0.3;
  config.max_retransmit_attempts = 16;  // headroom: no entry may exhaust
  auto net = MakeNetwork(2);
  for (int i = 0; i < 500; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
  EXPECT_EQ(net->stats().dropped, 0u);
  EXPECT_GT(net->stats().retransmits, 0u);
  EXPECT_GT(net->stats().transmissions_lost, 0u);
  EXPECT_EQ(net->in_flight(), 0u);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
}

TEST_F(NetFixture, ReliableDeliveryPreservesFifoUnderLossAndJitter) {
  config.reliable_delivery = true;
  config.drop_probability = 0.25;
  config.max_retransmit_attempts = 16;
  config.latency_jitter = 30;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 200; ++i) {
    net->Send(0, 1, Probe(i));
    net->Send(1, 0, Probe(1000 + i));
  }
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 200u);
  ASSERT_EQ(received[0].size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
    EXPECT_EQ(ProbeValue(received[0][i]), 1000 + i);
  }
}

TEST_F(NetFixture, ReliableDeliveryIsExactlyOnce) {
  // Heavy ack loss forces duplicate transmissions; the receiver must
  // suppress every duplicate.
  config.reliable_delivery = true;
  config.drop_probability = 0.5;
  config.max_retransmit_attempts = 24;  // headroom: no entry may exhaust
  auto net = MakeNetwork(2);
  for (int i = 0; i < 100; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 100u);
  EXPECT_GT(net->stats().dup_suppressed, 0u);
  EXPECT_EQ(net->stats().inter_site_delivered, 100u);
}

TEST_F(NetFixture, ReliableLosslessPathSendsNoRetransmits) {
  config.reliable_delivery = true;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 50; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 50u);
  EXPECT_EQ(net->stats().retransmits, 0u);
  EXPECT_EQ(net->stats().dup_suppressed, 0u);
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, ReliableRetransmitBudgetBoundsOutage) {
  // A permanently-down receiver must not retain sender state forever: the
  // attempt budget exhausts and the payloads are accounted dropped.
  config.reliable_delivery = true;
  config.max_retransmit_attempts = 3;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 5u);
  EXPECT_GT(net->stats().retransmits_exhausted, 0u);
  EXPECT_EQ(net->in_flight(), 0u);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
}

TEST_F(NetFixture, ChannelUnwedgesAfterRetransmitExhaustion) {
  // An abandoned wire message must not wedge the channel: once the budget
  // for seq N exhausts, later messages carry base_seq past the gap and the
  // receiver skips it instead of stashing everything after N forever.
  config.reliable_delivery = true;
  config.max_retransmit_attempts = 2;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  net->Send(0, 1, Probe(7));  // every attempt lands on a downed receiver
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().dropped, 1u);
  EXPECT_GT(net->stats().retransmits_exhausted, 0u);
  net->SetSiteDown(1, false);
  for (int i = 0; i < 3; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
  EXPECT_EQ(net->stats().dropped, 1u);  // only the abandoned probe
  EXPECT_EQ(net->in_flight(), 0u);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
}

TEST_F(NetFixture, ReliableDeliveryResumesAfterOutage) {
  config.reliable_delivery = true;
  config.latency = 5;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntil(40);  // a few failed attempts, budget not exhausted
  EXPECT_TRUE(received[1].empty());
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
  EXPECT_EQ(net->stats().dropped, 0u);
}

// --- Incarnations ----------------------------------------------------------

TEST_F(NetFixture, RestartRejectsStaleInFlightTraffic) {
  config.reliable_delivery = true;
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));  // in flight when site 1 restarts
  scheduler.RunUntil(5);
  net->NoteSiteRestarted(1);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_GE(net->stats().stale_incarnation_rejected, 1u);
  EXPECT_EQ(net->incarnation(1), 1u);
  EXPECT_EQ(net->in_flight(), 0u);
  // Post-restart traffic flows normally in the fresh sequence space.
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(ProbeValue(received[1][0]), 2u);
}

TEST_F(NetFixture, RestartDeadLettersUnackedChannels) {
  config.reliable_delivery = true;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);  // transmissions fail, entries accumulate
  for (int i = 0; i < 4; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntil(10);
  EXPECT_GT(net->unacked_wire_messages(), 0u);
  net->NoteSiteRestarted(1);
  EXPECT_EQ(net->unacked_wire_messages(), 0u);
  EXPECT_EQ(net->stats().dropped, 4u);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());  // dead-lettered, not resurrected
  EXPECT_EQ(net->in_flight(), 0u);
}

// --- Failure detection -----------------------------------------------------

TEST_F(NetFixture, FailureDetectorSuspectsAfterTimeoutAndRecovers) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  config.latency = 5;
  auto net = MakeNetwork(3);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
  net->SetSiteDown(1, true);
  scheduler.RunUntil(20);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1)) << "suspected before timeout";
  scheduler.RunUntil(45);
  EXPECT_TRUE(net->IsPeerSuspected(0, 1));
  EXPECT_TRUE(net->IsPeerSuspected(2, 1)) << "every observer suspects";
  EXPECT_FALSE(net->IsPeerSuspected(0, 2)) << "healthy peer not suspected";
  net->SetSiteDown(1, false);
  // Suspicion lingers for one heartbeat period + round trip after heal.
  EXPECT_TRUE(net->IsPeerSuspected(0, 1));
  scheduler.RunUntil(scheduler.now() + 10 + 2 * 5 + 1);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
  EXPECT_EQ(net->stats().fd_suspicions, 1u);
}

TEST_F(NetFixture, FailureDetectorMissesShortOutages) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  scheduler.RunUntil(20);
  net->SetSiteDown(1, false);
  scheduler.RunUntil(100);
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
  EXPECT_EQ(net->stats().fd_suspicions, 0u);
}

TEST_F(NetFixture, FailureDetectorSeesLinkFaultsPerObserver) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  auto net = MakeNetwork(3);
  net->SetLinkDown(0, 1, true);
  scheduler.RunUntil(50);
  EXPECT_TRUE(net->IsPeerSuspected(0, 1));
  EXPECT_TRUE(net->IsPeerSuspected(1, 0));
  EXPECT_FALSE(net->IsPeerSuspected(2, 1)) << "link fault is local to a pair";
  net->SetLinkDown(0, 1, false);
  scheduler.RunUntilIdle();
  EXPECT_FALSE(net->IsPeerSuspected(0, 1));
}

TEST_F(NetFixture, RecoveryListenersFireAfterDetectedOutageHeals) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  config.latency = 5;
  auto net = MakeNetwork(3);
  std::vector<std::pair<SiteId, SiteId>> notified;  // (observer, peer)
  std::vector<bool> restarted_flags;
  net->SetRecoveryListener(0, [&](SiteId peer, bool restarted) {
    notified.emplace_back(0, peer);
    restarted_flags.push_back(restarted);
  });
  net->SetRecoveryListener(2, [&](SiteId peer, bool restarted) {
    notified.emplace_back(2, peer);
    restarted_flags.push_back(restarted);
  });
  // Undetected short outage: no notification.
  net->SetSiteDown(1, true);
  scheduler.RunUntil(10);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(notified.empty());
  // Detected outage: every *other* observer hears about the heal.
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(notified.size(), 2u);
  EXPECT_EQ(notified[0], (std::pair<SiteId, SiteId>{0, 1}));
  EXPECT_EQ(notified[1], (std::pair<SiteId, SiteId>{2, 1}));
  EXPECT_FALSE(restarted_flags[0]) << "plain outage, not an incarnation bump";
  EXPECT_FALSE(restarted_flags[1]);
  EXPECT_EQ(net->stats().fd_recoveries, 1u);
  // An outage spanning a restart flags the heal: observers learn the peer
  // is a replacement incarnation.
  notified.clear();
  restarted_flags.clear();
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);
  net->NoteSiteRestarted(1);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(notified.size(), 2u);
  EXPECT_TRUE(restarted_flags[0]);
  EXPECT_TRUE(restarted_flags[1]);
}

TEST_F(NetFixture, RestartErasesRecoveryListenerUntilReRegistered) {
  config.heartbeat_period = 10;
  config.heartbeat_timeout = 40;
  config.latency = 5;
  auto net = MakeNetwork(3);
  std::vector<SiteId> notified;
  net->SetRecoveryListener(
      0, [&](SiteId peer, bool /*restarted*/) { notified.push_back(peer); });
  EXPECT_EQ(net->recovery_listener_entries(), 1u);
  // A restart dead-letters the old incarnation's connection state; its
  // recovery listener must go with it, not fire on the new incarnation's
  // behalf.
  net->NoteSiteRestarted(0);
  EXPECT_EQ(net->recovery_listener_entries(), 0u);
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);  // detected outage
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(notified.empty()) << "stale listener fired after restart";
  // The new incarnation subscribes afresh and hears the next heal.
  net->SetRecoveryListener(
      0, [&](SiteId peer, bool /*restarted*/) { notified.push_back(peer); });
  EXPECT_EQ(net->recovery_listener_entries(), 1u);
  net->SetSiteDown(1, true);
  scheduler.RunUntil(scheduler.now() + 50);
  net->SetSiteDown(1, false);
  scheduler.RunUntilIdle();
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], 1u);
}

TEST_F(NetFixture, RetiredBatchBuffersArePooledAndReused) {
  config.batch_window = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();  // batch delivered, its buffer retired to the pool
  EXPECT_EQ(net->batch_pool_size(), 1u);
  EXPECT_EQ(net->batch_pool_hits(), 0u);
  net->Send(0, 1, Probe(2));  // new window takes the pooled allocation
  EXPECT_EQ(net->batch_pool_size(), 0u);
  EXPECT_EQ(net->batch_pool_hits(), 1u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->batch_pool_size(), 1u);
  EXPECT_EQ(received[1].size(), 2u);
}

TEST(PayloadTest, KindNamesCoverAllAlternatives) {
  for (std::size_t i = 0; i < kPayloadKinds; ++i) {
    EXPECT_NE(PayloadKindName(i), nullptr);
    EXPECT_GT(std::string(PayloadKindName(i)).size(), 0u);
  }
}

TEST(PayloadTest, WireSizeScalesWithContent) {
  UpdateMsg small{{UpdateEntry{ObjectId{1, 1}, false, 3}}};
  UpdateMsg big;
  for (int i = 0; i < 50; ++i) {
    big.entries.push_back(UpdateEntry{ObjectId{1, (std::uint64_t)i}, false, 3});
  }
  EXPECT_LT(ApproxWireSize(small), ApproxWireSize(big));
}

// ---------------------------------------------------------------------------
// Wire codec (net/wire.h): the byte format every coordinator<->site frame
// travels in. All pure — no sockets, no forks.

/// One representative of every Payload alternative, in variant order, with
/// non-default field values so a field swap or a missed vector would show.
/// EncodePayload's static_assert points here when the vocabulary grows.
std::vector<Payload> OnePayloadOfEachKind() {
  std::vector<Payload> all;
  all.push_back(InsertMsg{ObjectId{2, 7}, 1, 3, 5});
  all.push_back(InsertAckMsg{ObjectId{2, 7}, 1});
  all.push_back(UpdateMsg{{UpdateEntry{ObjectId{1, 2}, true, kDistanceInfinity},
                           UpdateEntry{ObjectId{3, 4}, false, 9}}});
  all.push_back(BackLocalCallMsg{TraceId{1, 2}, ObjectId{3, 4}, FrameId{5, 6}});
  all.push_back(
      BackRemoteCallMsg{TraceId{1, 2}, ObjectId{3, 4}, FrameId{5, 6}});
  all.push_back(
      BackReplyMsg{TraceId{1, 2}, FrameId{3, 4}, BackResult::kLive, {0, 2, 3}});
  all.push_back(BackReportMsg{TraceId{1, 2}, BackResult::kGarbage});
  all.push_back(BackCallBatchMsg{
      {BackLocalCallMsg{TraceId{1, 2}, ObjectId{3, 4}, FrameId{5, 6}},
       BackLocalCallMsg{TraceId{7, 8}, ObjectId{9, 10}, FrameId{11, 12}}}});
  all.push_back(MutatorReadMsg{42, ObjectId{1, 2}, 3});
  all.push_back(MutatorReadReplyMsg{42, ObjectId{1, 2}});
  all.push_back(MutatorWriteMsg{42, ObjectId{1, 2}, 3, ObjectId{4, 5}});
  all.push_back(MutatorWriteAckMsg{42});
  all.push_back(FetchMsg{42, ObjectId{1, 2}});
  all.push_back(
      FetchReplyMsg{42, ObjectId{1, 2}, {ObjectId{3, 4}, kInvalidObject}});
  all.push_back(CommitMsg{42, {CommitWrite{ObjectId{1, 2}, 0, ObjectId{3, 4}},
                               CommitWrite{ObjectId{5, 6}, 1, kInvalidObject}}});
  all.push_back(CommitAckMsg{42});
  all.push_back(PinReleaseMsg{ObjectId{1, 2}});
  all.push_back(
      GlobalGcControlMsg{9, GlobalGcControlMsg::Phase::kSweepDone, 17});
  all.push_back(GlobalGcGrayMsg{9, {ObjectId{1, 2}, ObjectId{3, 4}}});
  all.push_back(TimestampUpdateMsg{
      {TimestampUpdateMsg::Entry{ObjectId{1, 2}, -5}}, 11});
  all.push_back(MigrateMsg{
      {MigrateMsg::MovedObject{ObjectId{1, 2}, {ObjectId{3, 4}}}}});
  all.push_back(PatchMsg{ObjectId{1, 2}, ObjectId{3, 4}});
  ReachabilitySummaryMsg summary;
  summary.epoch = 7;
  summary.inrefs.push_back({ObjectId{1, 2}, {ObjectId{3, 4}, ObjectId{5, 6}}});
  summary.root_reachable_outrefs.push_back(ObjectId{7, 8});
  all.push_back(summary);
  all.push_back(CondemnMsg{9, {ObjectId{1, 2}}});
  return all;
}

std::vector<std::uint8_t> EncodeOnePayload(const Payload& payload) {
  wire::WireWriter w;
  wire::EncodePayload(w, payload);
  return w.take();
}

TEST(WireCodecTest, EveryPayloadKindRoundTrips) {
  const std::vector<Payload> all = OnePayloadOfEachKind();
  ASSERT_EQ(all.size(), kPayloadKinds);
  for (std::size_t i = 0; i < all.size(); ++i) {
    SCOPED_TRACE(PayloadKindName(i));
    ASSERT_EQ(all[i].index(), i);  // table order matches the variant
    const std::vector<std::uint8_t> bytes = EncodeOnePayload(all[i]);
    wire::WireReader r(bytes);
    Payload decoded;
    ASSERT_TRUE(wire::DecodePayload(r, decoded));
    EXPECT_TRUE(r.exhausted());
    ASSERT_EQ(decoded.index(), i);
    // The structs have no operator==; byte-identical re-encoding is the
    // equality that matters on a wire anyway.
    EXPECT_EQ(EncodeOnePayload(decoded), bytes);
  }
}

TEST(WireCodecTest, TruncatedPayloadsFailCleanly) {
  for (const Payload& payload : OnePayloadOfEachKind()) {
    SCOPED_TRACE(PayloadKindName(payload.index()));
    const std::vector<std::uint8_t> bytes = EncodeOnePayload(payload);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      wire::WireReader r(bytes.data(), len);
      Payload out;
      EXPECT_FALSE(wire::DecodePayload(r, out)) << "prefix " << len;
    }
  }
}

TEST(WireCodecTest, UnknownPayloadKindIsRejected) {
  wire::WireWriter w;
  wire::EncodeEnvelope(w, Envelope{0, 1, InsertMsg{}});
  std::vector<std::uint8_t> bytes = w.take();
  bytes[8] = 0xEE;  // from(4) + to(4), then the payload kind byte
  wire::WireReader r(bytes);
  Envelope out;
  EXPECT_FALSE(wire::DecodeEnvelope(r, out));
}

TEST(WireCodecTest, GarbageVectorCountCannotDriveAHugeAllocation) {
  // A corrupt count claiming 2^32-1 entries must fail on the spot (via
  // seq_count's plausibility check), not reserve gigabytes first.
  wire::WireWriter w;
  w.u8(2);           // UpdateMsg's variant index
  w.u32(0xFFFFFFFF);  // entry count with no bytes behind it
  wire::WireReader r(w.data());
  Payload out;
  EXPECT_FALSE(wire::DecodePayload(r, out));
}

TEST(WireFramingTest, EveryFrameTypeRoundTripsAndPrefixesWantMore) {
  const std::vector<std::uint8_t> body = {0xde, 0xad, 0xbe, 0xef};
  for (std::uint8_t t = wire::kMinFrameType; t <= wire::kMaxFrameType; ++t) {
    SCOPED_TRACE(static_cast<int>(t));
    std::vector<std::uint8_t> buf;
    wire::AppendFrame(buf, static_cast<wire::FrameType>(t), body);
    wire::FrameView view;
    ASSERT_EQ(wire::ParseFrame(buf.data(), buf.size(), view),
              wire::FrameParseStatus::kOk);
    EXPECT_EQ(view.type, static_cast<wire::FrameType>(t));
    EXPECT_EQ(view.consumed, buf.size());
    EXPECT_EQ(std::vector<std::uint8_t>(view.body, view.body + view.body_size),
              body);
    for (std::size_t n = 0; n < buf.size(); ++n) {
      EXPECT_EQ(wire::ParseFrame(buf.data(), n, view),
                wire::FrameParseStatus::kNeedMore)
          << "prefix " << n;
    }
  }
}

TEST(WireFramingTest, BackToBackFramesParseInSequence) {
  std::vector<std::uint8_t> buf;
  wire::AppendFrame(buf, wire::FrameType::kQuery, {1, 2});
  wire::AppendFrame(buf, wire::FrameType::kShutdown, {});
  wire::FrameView first;
  ASSERT_EQ(wire::ParseFrame(buf.data(), buf.size(), first),
            wire::FrameParseStatus::kOk);
  EXPECT_EQ(first.type, wire::FrameType::kQuery);
  wire::FrameView second;
  ASSERT_EQ(wire::ParseFrame(buf.data() + first.consumed,
                             buf.size() - first.consumed, second),
            wire::FrameParseStatus::kOk);
  EXPECT_EQ(second.type, wire::FrameType::kShutdown);
  EXPECT_EQ(second.body_size, 0u);
  EXPECT_EQ(first.consumed + second.consumed, buf.size());
}

TEST(WireFramingTest, OversizedAndGarbageFramesAreRejected) {
  const auto parse = [](const std::vector<std::uint8_t>& buf) {
    wire::FrameView view;
    return wire::ParseFrame(buf.data(), buf.size(), view);
  };
  const auto header = [](std::uint32_t length) {
    return std::vector<std::uint8_t>{
        static_cast<std::uint8_t>(length), static_cast<std::uint8_t>(length >> 8),
        static_cast<std::uint8_t>(length >> 16),
        static_cast<std::uint8_t>(length >> 24)};
  };
  // Length past the ceiling: rejected from the header alone, before any
  // body bytes exist to allocate for.
  EXPECT_EQ(parse(header(wire::kMaxFrameBytes + 1)),
            wire::FrameParseStatus::kOversized);
  // Zero length: no room for even the type byte.
  EXPECT_EQ(parse(header(0)), wire::FrameParseStatus::kBadFrame);
  // Unknown frame types on either side of the valid range.
  for (const std::uint8_t type :
       {static_cast<std::uint8_t>(0),
        static_cast<std::uint8_t>(wire::kMaxFrameType + 1),
        static_cast<std::uint8_t>(0xFF)}) {
    std::vector<std::uint8_t> buf = header(1);
    buf.push_back(type);
    EXPECT_EQ(parse(buf), wire::FrameParseStatus::kBadFrame)
        << "type " << static_cast<int>(type);
  }
}

TEST(WireHandshakeTest, VerdictMatrix) {
  using wire::HandshakeVerdict;
  const auto evaluate = [](std::uint32_t incarnation, std::uint32_t expected,
                           bool seen_before) {
    wire::HelloFrame hello;
    hello.site = 1;
    hello.incarnation = incarnation;
    return wire::EvaluateHandshake(hello, /*site_count=*/4, expected,
                                   seen_before);
  };
  // The three accepts: fresh site, socket-sever redial, crash replacement.
  EXPECT_EQ(evaluate(0, 0, false), HandshakeVerdict::kAcceptNew);
  EXPECT_EQ(evaluate(3, 3, true), HandshakeVerdict::kAcceptReconnect);
  EXPECT_EQ(evaluate(4, 3, true), HandshakeVerdict::kAcceptRestart);
  // Zombie traffic: an old incarnation redialing after its replacement.
  EXPECT_EQ(evaluate(2, 3, true), HandshakeVerdict::kRejectStale);
  // A skip ahead means peer and coordinator disagree about history.
  EXPECT_EQ(evaluate(5, 3, true), HandshakeVerdict::kRejectStale);
  // A restart claim for a site never seen is equally untrustworthy.
  EXPECT_EQ(evaluate(1, 0, false), HandshakeVerdict::kRejectStale);

  wire::HelloFrame hello;
  hello.site = 1;
  hello.magic = 0xBADBAD;
  EXPECT_EQ(wire::EvaluateHandshake(hello, 4, 0, false),
            HandshakeVerdict::kRejectBadMagic);
  hello.magic = wire::kWireMagic;
  hello.version = wire::kWireVersion + 1;
  EXPECT_EQ(wire::EvaluateHandshake(hello, 4, 0, false),
            HandshakeVerdict::kRejectVersion);
  hello.version = wire::kWireVersion;
  hello.site = 4;  // one past the last valid site
  EXPECT_EQ(wire::EvaluateHandshake(hello, 4, 0, false),
            HandshakeVerdict::kRejectUnknownSite);

  for (const HandshakeVerdict v :
       {HandshakeVerdict::kAcceptNew, HandshakeVerdict::kAcceptReconnect,
        HandshakeVerdict::kAcceptRestart}) {
    EXPECT_TRUE(wire::HandshakeAccepted(v));
    EXPECT_NE(wire::HandshakeVerdictName(v), nullptr);
  }
  for (const HandshakeVerdict v :
       {HandshakeVerdict::kRejectBadMagic, HandshakeVerdict::kRejectVersion,
        HandshakeVerdict::kRejectUnknownSite, HandshakeVerdict::kRejectStale}) {
    EXPECT_FALSE(wire::HandshakeAccepted(v));
    EXPECT_NE(wire::HandshakeVerdictName(v), nullptr);
  }
}

TEST(WireHandshakeTest, HelloAndAckRoundTrip) {
  wire::HelloFrame hello;
  hello.site = 2;
  hello.incarnation = 5;
  wire::WireWriter w;
  wire::EncodeHello(w, hello);
  wire::WireReader r(w.data());
  wire::HelloFrame hello2;
  ASSERT_TRUE(wire::DecodeHello(r, hello2));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(hello2.magic, wire::kWireMagic);
  EXPECT_EQ(hello2.version, wire::kWireVersion);
  EXPECT_EQ(hello2.site, 2u);
  EXPECT_EQ(hello2.incarnation, 5u);

  wire::HelloAckFrame ack;
  ack.verdict = wire::HandshakeVerdict::kAcceptRestart;
  ack.site_count = 4;
  ack.now = 123;
  ack.failure_detection_enabled = true;
  ack.config.suspicion_threshold = 7;
  ack.config.report_timeout = 999;
  wire::WireWriter wa;
  wire::EncodeHelloAck(wa, ack);
  wire::WireReader ra(wa.data());
  wire::HelloAckFrame ack2;
  ASSERT_TRUE(wire::DecodeHelloAck(ra, ack2));
  EXPECT_EQ(ack2.verdict, wire::HandshakeVerdict::kAcceptRestart);
  EXPECT_EQ(ack2.site_count, 4u);
  EXPECT_EQ(ack2.now, 123);
  EXPECT_TRUE(ack2.failure_detection_enabled);
  EXPECT_EQ(ack2.config.suspicion_threshold, 7u);
  EXPECT_EQ(ack2.config.report_timeout, 999);

  // The config payload makes the ack the largest handshake frame; every
  // strict prefix must still fail cleanly.
  const std::vector<std::uint8_t> bytes = wa.take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    wire::WireReader rp(bytes.data(), len);
    wire::HelloAckFrame out;
    EXPECT_FALSE(wire::DecodeHelloAck(rp, out)) << "prefix " << len;
  }
}

TEST(WireEngineFrameTest, StepRequestCarriesDetectorStateAndEnvelopes) {
  wire::StepRequestFrame f;
  f.seq = 9;
  f.target_time = 77;
  f.suspected = {2};
  f.recovered = {1, 3};
  f.restarted = {1};  // restart notice: scrub the dead incarnation's traces
  f.envelopes.push_back(Envelope{0, 1, InsertMsg{ObjectId{1, 4}, 0, 2, 6}});
  wire::WireWriter w;
  wire::EncodeStepRequest(w, f);
  wire::WireReader r(w.data());
  wire::StepRequestFrame f2;
  ASSERT_TRUE(wire::DecodeStepRequest(r, f2));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(f2.seq, 9u);
  EXPECT_EQ(f2.target_time, 77);
  EXPECT_EQ(f2.suspected, std::vector<SiteId>{2});
  EXPECT_EQ(f2.recovered, (std::vector<SiteId>{1, 3}));
  EXPECT_EQ(f2.restarted, std::vector<SiteId>{1});
  ASSERT_EQ(f2.envelopes.size(), 1u);
  EXPECT_EQ(f2.envelopes[0].from, 0u);
  EXPECT_EQ(f2.envelopes[0].to, 1u);
  EXPECT_EQ(std::get<InsertMsg>(f2.envelopes[0].payload).ref,
            (ObjectId{1, 4}));
  wire::WireWriter w2;
  wire::EncodeStepRequest(w2, f2);
  EXPECT_EQ(w2.data(), w.data());
}

TEST(WireEngineFrameTest, StepBuildAndQueryRepliesRoundTrip) {
  wire::StepReplyFrame step;
  step.seq = 11;
  step.next_event_time = 345;
  step.handled = 6;
  step.staged.push_back(Envelope{1, 0, PinReleaseMsg{ObjectId{0, 9}}});
  wire::WireWriter ws;
  wire::EncodeStepReply(ws, step);
  wire::WireReader rs(ws.data());
  wire::StepReplyFrame step2;
  ASSERT_TRUE(wire::DecodeStepReply(rs, step2));
  EXPECT_TRUE(rs.exhausted());
  EXPECT_EQ(step2.seq, 11u);
  EXPECT_EQ(step2.next_event_time, 345);
  EXPECT_EQ(step2.handled, 6u);
  ASSERT_EQ(step2.staged.size(), 1u);

  wire::BuildOpFrame op;
  op.seq = 3;
  op.time = 50;
  op.op = wire::BuildOpKind::kWireSource;
  op.a = ObjectId{0, 1};
  op.b = ObjectId{2, 3};
  op.slot = 1;
  op.n = 4;
  wire::WireWriter wo;
  wire::EncodeBuildOp(wo, op);
  wire::WireReader ro(wo.data());
  wire::BuildOpFrame op2;
  ASSERT_TRUE(wire::DecodeBuildOp(ro, op2));
  EXPECT_EQ(op2.op, wire::BuildOpKind::kWireSource);
  EXPECT_EQ(op2.a, (ObjectId{0, 1}));
  EXPECT_EQ(op2.b, (ObjectId{2, 3}));
  EXPECT_EQ(op2.slot, 1u);
  EXPECT_EQ(op2.n, 4u);

  wire::BuildReplyFrame build;
  build.seq = 3;
  build.result = ObjectId{2, 8};
  build.next_event_time = 60;
  wire::WireWriter wb;
  wire::EncodeBuildReply(wb, build);
  wire::WireReader rb(wb.data());
  wire::BuildReplyFrame build2;
  ASSERT_TRUE(wire::DecodeBuildReply(rb, build2));
  EXPECT_EQ(build2.result, (ObjectId{2, 8}));

  wire::QueryFrame query;
  query.seq = 21;
  query.time = 900;
  wire::WireWriter wq;
  wire::EncodeQuery(wq, query);
  wire::WireReader rq(wq.data());
  wire::QueryFrame query2;
  ASSERT_TRUE(wire::DecodeQuery(rq, query2));
  EXPECT_EQ(query2.seq, 21u);
  EXPECT_EQ(query2.time, 900);

  wire::QueryReplyFrame census;
  census.seq = 21;
  census.objects = 5;
  census.reclaimed = 7;
  census.traces_started = 2;
  census.traces_garbage = 1;
  census.traces_live = 1;
  census.trace_in_flight = true;
  census.incarnation = 3;
  census.survivors = {ObjectId{0, 1}, ObjectId{0, 4}};
  wire::WireWriter wc;
  wire::EncodeQueryReply(wc, census);
  wire::WireReader rc(wc.data());
  wire::QueryReplyFrame census2;
  ASSERT_TRUE(wire::DecodeQueryReply(rc, census2));
  EXPECT_EQ(census2.objects, 5u);
  EXPECT_EQ(census2.reclaimed, 7u);
  EXPECT_TRUE(census2.trace_in_flight);
  EXPECT_EQ(census2.incarnation, 3u);
  EXPECT_EQ(census2.survivors, (std::vector<ObjectId>{{0, 1}, {0, 4}}));
}

}  // namespace
}  // namespace dgc
