// Unit tests for the simulated network: FIFO channels, fault injection,
// self-delivery, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace dgc {
namespace {

struct NetFixture : ::testing::Test {
  Scheduler scheduler;
  NetworkConfig config;
  std::vector<std::vector<Envelope>> received;

  std::unique_ptr<Network> MakeNetwork(std::size_t sites) {
    auto network = std::make_unique<Network>(scheduler, config, Rng(1));
    received.resize(sites);
    for (SiteId s = 0; s < sites; ++s) {
      network->RegisterSite(s, [this, s](const Envelope& envelope) {
        received[s].push_back(envelope);
      });
    }
    return network;
  }

  static Payload Probe(std::uint64_t value) {
    return GlobalGcControlMsg{value, GlobalGcControlMsg::Phase::kProbe, value};
  }
  static std::uint64_t ProbeValue(const Envelope& envelope) {
    return std::get<GlobalGcControlMsg>(envelope.payload).value;
  }
};

TEST_F(NetFixture, DeliversWithLatency) {
  config.latency = 7;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(42));
  EXPECT_TRUE(received[1].empty());
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(ProbeValue(received[1][0]), 42u);
  EXPECT_EQ(scheduler.now(), 7);
}

TEST_F(NetFixture, PerChannelFifoUnderJitter) {
  config.latency = 5;
  config.latency_jitter = 50;
  auto net = MakeNetwork(2);
  for (std::uint64_t i = 0; i < 100; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
}

TEST_F(NetFixture, SelfDeliveryIsAsynchronousAndUncounted) {
  auto net = MakeNetwork(1);
  net->Send(0, 0, Probe(1));
  EXPECT_TRUE(received[0].empty());  // not synchronous
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[0].size(), 1u);
  EXPECT_EQ(net->stats().inter_site_sent, 0u);
  EXPECT_EQ(net->stats().self_deliveries, 1u);
}

TEST_F(NetFixture, DownSiteDropsTraffic) {
  auto net = MakeNetwork(2);
  net->SetSiteDown(1, true);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 1u);
  net->SetSiteDown(1, false);
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, CrashAfterSendLosesInFlightMessage) {
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntil(5);
  net->SetSiteDown(1, true);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 1u);
}

TEST_F(NetFixture, SeveredLinkIsBidirectionalAndRestorable) {
  auto net = MakeNetwork(3);
  net->SetLinkDown(0, 1, true);
  net->Send(0, 1, Probe(1));
  net->Send(1, 0, Probe(2));
  net->Send(0, 2, Probe(3));  // unrelated link unaffected
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_TRUE(received[0].empty());
  EXPECT_EQ(received[2].size(), 1u);
  net->SetLinkDown(0, 1, false);
  net->Send(0, 1, Probe(4));
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, LossInjectionDropsApproximateFraction) {
  config.drop_probability = 0.3;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 1000; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_GT(received[1].size(), 600u);
  EXPECT_LT(received[1].size(), 800u);
  EXPECT_EQ(received[1].size() + net->stats().dropped, 1000u);
}

TEST_F(NetFixture, PerKindCountersAndBytes) {
  auto net = MakeNetwork(2);
  net->Send(0, 1, InsertMsg{ObjectId{1, 1}, 0, 0});
  net->Send(0, 1, InsertMsg{ObjectId{1, 2}, 0, 0});
  net->Send(0, 1, BackReportMsg{TraceId{0, 1}, BackResult::kLive});
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().count_of<InsertMsg>(), 2u);
  EXPECT_EQ(net->stats().count_of<BackReportMsg>(), 1u);
  EXPECT_EQ(net->stats().count_of<UpdateMsg>(), 0u);
  EXPECT_GT(net->stats().approx_bytes, 0u);
}

TEST_F(NetFixture, InFlightTracksUndeliveredMessages) {
  config.latency = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  net->Send(0, 1, Probe(2));
  EXPECT_EQ(net->in_flight(), 2u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, WithoutBatchingWireEqualsLogical) {
  auto net = MakeNetwork(2);
  for (int i = 0; i < 10; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().inter_site_sent, 10u);
  EXPECT_EQ(net->stats().wire_messages, 10u);
}

TEST_F(NetFixture, BatchingCoalescesAWindowIntoOneWireMessage) {
  config.batch_window = 10;
  config.latency = 5;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 10; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 10u);
  EXPECT_EQ(net->stats().inter_site_sent, 10u);   // logical count unchanged
  EXPECT_EQ(net->stats().wire_messages, 1u);      // one piggybacked batch
  EXPECT_LT(net->stats().wire_bytes, net->stats().approx_bytes);
  // Delivery order within the batch preserved.
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i);
  }
}

TEST_F(NetFixture, BatchingDelaysDeliveryByTheWindow) {
  config.batch_window = 10;
  config.latency = 5;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntil(14);  // window (10) + latency (5) not yet elapsed
  EXPECT_TRUE(received[1].empty());
  scheduler.RunUntilIdle();
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_EQ(scheduler.now(), 15);
}

TEST_F(NetFixture, SeparateWindowsSeparateBatches) {
  config.batch_window = 10;
  auto net = MakeNetwork(2);
  net->Send(0, 1, Probe(1));
  scheduler.RunUntilIdle();  // first window flushes
  net->Send(0, 1, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().wire_messages, 2u);
  EXPECT_EQ(received[1].size(), 2u);
}

TEST_F(NetFixture, BatchesPerChannelNotPerSitePair) {
  config.batch_window = 10;
  auto net = MakeNetwork(3);
  net->Send(0, 1, Probe(1));
  net->Send(0, 2, Probe(2));
  net->Send(1, 0, Probe(3));  // reverse direction = its own channel
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->stats().wire_messages, 3u);
}

TEST_F(NetFixture, DroppedBatchLosesAllContents) {
  config.batch_window = 10;
  config.drop_probability = 1.0;
  auto net = MakeNetwork(2);
  for (int i = 0; i < 5; ++i) net->Send(0, 1, Probe(i));
  scheduler.RunUntilIdle();
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(net->stats().dropped, 5u);
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetFixture, BatchingPreservesCrossBatchFifo) {
  config.batch_window = 7;
  config.latency = 5;
  config.latency_jitter = 40;
  auto net = MakeNetwork(2);
  for (std::uint64_t i = 0; i < 30; ++i) {
    net->Send(0, 1, Probe(i));
    scheduler.RunUntil(scheduler.now() + 3);  // spread across several windows
  }
  scheduler.RunUntilIdle();
  ASSERT_EQ(received[1].size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(ProbeValue(received[1][i]), i) << "reordered at " << i;
  }
  EXPECT_GT(net->stats().wire_messages, 1u);
  EXPECT_LT(net->stats().wire_messages, 30u);
}

TEST_F(NetFixture, FlushedBatchEntriesAreErasedNotParked) {
  config.batch_window = 10;
  auto net = MakeNetwork(3);
  net->Send(0, 1, Probe(1));
  net->Send(0, 2, Probe(2));
  EXPECT_EQ(net->pending_batch_channels(), 2u);
  scheduler.RunUntilIdle();
  // Flushing removes the channel entry entirely; the map tracks channels
  // with an open window, not every pair that ever talked.
  EXPECT_EQ(net->pending_batch_channels(), 0u);
  net->Send(0, 1, Probe(3));  // re-creates the entry and re-arms the timer
  EXPECT_EQ(net->pending_batch_channels(), 1u);
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->pending_batch_channels(), 0u);
  EXPECT_EQ(received[1].size(), 2u);
  EXPECT_EQ(received[2].size(), 1u);
}

TEST_F(NetFixture, InertFifoClampEntriesArePurgedPeriodically) {
  config.latency = 3;
  auto net = MakeNetwork(2);
  // Talk on both directions, then let everything deliver: both clamp
  // entries are now inert (last delivery <= now).
  net->Send(0, 1, Probe(1));
  net->Send(1, 0, Probe(2));
  scheduler.RunUntilIdle();
  EXPECT_EQ(net->channel_clamp_entries(), 2u);
  // Drive one channel past the purge period; the idle channels' inert
  // entries must be swept rather than retained forever.
  for (std::uint64_t i = 0; i < Network::kChannelPurgePeriod + 1; ++i) {
    net->Send(0, 1, Probe(i));
    scheduler.RunUntilIdle();
  }
  EXPECT_LE(net->channel_clamp_entries(), 1u);
}

TEST(PayloadTest, KindNamesCoverAllAlternatives) {
  for (std::size_t i = 0; i < kPayloadKinds; ++i) {
    EXPECT_NE(PayloadKindName(i), nullptr);
    EXPECT_GT(std::string(PayloadKindName(i)).size(), 0u);
  }
}

TEST(PayloadTest, WireSizeScalesWithContent) {
  UpdateMsg small{{UpdateEntry{ObjectId{1, 1}, false, 3}}};
  UpdateMsg big;
  for (int i = 0; i < 50; ++i) {
    big.entries.push_back(UpdateEntry{ObjectId{1, (std::uint64_t)i}, false, 3});
  }
  EXPECT_LT(ApproxWireSize(small), ApproxWireSize(big));
}

}  // namespace
}  // namespace dgc
