// Tests for the validation machinery itself: the oracle and each invariant
// checker must actually detect the violations they claim to detect (a
// checker that can never fail validates nothing).
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.enable_back_tracing = false;
  return config;
}

TEST(OracleTest, LiveSetFollowsAllRootKinds) {
  System system(2, Config());
  const ObjectId rooted = system.NewObject(0, 1);
  system.SetPersistentRoot(rooted);
  const ObjectId via_slot = system.NewObject(1, 0);
  system.Wire(rooted, 0, via_slot);
  const ObjectId app_rooted = system.NewObject(0, 0);
  system.site(0).AddAppRoot(app_rooted);
  const ObjectId pinned = system.NewObject(1, 0);
  bool done = false;
  system.site(0).ReceiveReference(pinned, [&] { done = true; });
  system.SettleNetwork();
  ASSERT_TRUE(done);
  system.site(0).PinOutref(pinned);
  const ObjectId orphan = system.NewObject(1, 0);

  const auto live = system.ComputeLiveSet();
  EXPECT_TRUE(live.contains(rooted));
  EXPECT_TRUE(live.contains(via_slot));
  EXPECT_TRUE(live.contains(app_rooted));
  EXPECT_TRUE(live.contains(pinned));
  EXPECT_FALSE(live.contains(orphan));
}

TEST(OracleTest, CheckSafetyDetectsAManuallyFreedLiveObject) {
  System system(2, Config());
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  const ObjectId victim = system.NewObject(1, 0);
  system.Wire(root, 0, victim);
  EXPECT_TRUE(system.CheckSafety().empty());
  system.site(1).heap().Free(victim);  // simulate a collector bug
  const std::string violation = system.CheckSafety();
  EXPECT_FALSE(violation.empty());
  EXPECT_NE(violation.find("was reclaimed"), std::string::npos);
}

TEST(OracleTest, CheckCompletenessDetectsLeakedGarbage) {
  System system(1, Config());
  system.NewObject(0, 0);  // garbage, not yet collected
  EXPECT_FALSE(system.CheckCompleteness().empty());
  system.RunRound();
  EXPECT_TRUE(system.CheckCompleteness().empty());
}

TEST(OracleTest, CheckReferentialIntegrityDetectsMissingOutref) {
  System system(2, Config());
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  const ObjectId target = system.NewObject(1, 0);
  system.Wire(root, 0, target);
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty());
  system.site(0).tables().RemoveOutref(target);  // corrupt the tables
  const std::string violation = system.CheckReferentialIntegrity();
  EXPECT_FALSE(violation.empty());
  EXPECT_NE(violation.find("no outref"), std::string::npos);
}

TEST(OracleTest, CheckReferentialIntegrityDetectsMissingSource) {
  System system(2, Config());
  const ObjectId root = system.NewObject(0, 1);
  system.SetPersistentRoot(root);
  const ObjectId target = system.NewObject(1, 0);
  system.Wire(root, 0, target);
  system.site(1).tables().RemoveInrefSource(target, 0);  // corrupt
  const std::string violation = system.CheckReferentialIntegrity();
  EXPECT_FALSE(violation.empty());
  EXPECT_NE(violation.find("missing from owner's inref sources"),
            std::string::npos);
}

TEST(OracleTest, LocalSafetyCheckerDetectsCorruptedInset) {
  System system(2, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  system.RunRounds(6);  // suspected; insets computed
  ASSERT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << system.CheckLocalSafetyInvariant();
  // Corrupt site 0's back information: drop the inset of its outref.
  Site& site0 = system.site(0);
  auto& info = const_cast<SiteBackInfo&>(site0.back_info());
  info.outref_insets.clear();
  const std::string violation = system.CheckLocalSafetyInvariant();
  EXPECT_FALSE(violation.empty());
  EXPECT_NE(violation.find("inset omits it"), std::string::npos);
  (void)cycle;
}

TEST(OracleTest, AggregateStatsSumAcrossSites) {
  System system(3, CollectorConfig{.suspicion_threshold = 2,
                                   .estimated_cycle_length = 3});
  workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 1});
  system.RunRounds(20);
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_GE(stats.traces_started, 2u);
  EXPECT_GE(stats.traces_completed_garbage, 2u);
  EXPECT_EQ(system.TotalObjectsReclaimed(), 4u);
  EXPECT_EQ(system.TotalObjects(), 0u);
}

TEST(OracleTest, ObjectExistsRejectsForeignAndInvalidIds) {
  System system(2, Config());
  EXPECT_FALSE(system.ObjectExists(kInvalidObject));
  EXPECT_FALSE(system.ObjectExists(ObjectId{99, 1}));  // site out of range
  EXPECT_FALSE(system.ObjectExists(ObjectId{0, 12345}));
  const ObjectId real = system.NewObject(0, 0);
  EXPECT_TRUE(system.ObjectExists(real));
}

}  // namespace
}  // namespace dgc
