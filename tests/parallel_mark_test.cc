// Twin-determinism tests for intra-site parallel marking (mark_threads) and
// its interaction with per-site parallel rounds (trace_threads) and
// incremental traces: every thread-count combination must produce the same
// TraceResults, distances, sweep sets, and end-to-end verdicts as the
// sequential collector, over many seeded workloads. Plus unit coverage for
// the shared WorkerPool the two scheduling levels run on.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/worker_pool.h"
#include "core/parallel_trace.h"
#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

// Serializes every semantic field of a TraceResult. Wall times and the
// work-stealing schedule counters (mark_steals, mark_batches) legitimately
// vary run to run and are excluded; everything else must be bit-identical
// at any thread count.
std::string DumpTraceResult(const TraceResult& r) {
  std::ostringstream os;
  os << "epoch " << r.epoch << '\n';
  os << "snapshot_outrefs";
  for (const ObjectId id : r.snapshot_outrefs) os << ' ' << id;
  os << "\nsnapshot_inrefs";
  for (const ObjectId id : r.snapshot_inrefs) os << ' ' << id;
  os << "\noutref_distances";
  for (const auto& [id, d] : r.outref_distances) os << ' ' << id << '=' << d;
  os << "\noutrefs_clean";
  for (const ObjectId id : r.outrefs_clean) os << ' ' << id;
  os << "\noutrefs_untraced";
  for (const ObjectId id : r.outrefs_untraced) os << ' ' << id;
  os << "\nobjects_to_free";
  for (const ObjectId id : r.objects_to_free) os << ' ' << id;
  os << "\ninref_outsets";
  for (const auto& [inref, outset] : r.back_info.inref_outsets) {
    os << ' ' << inref << ":[";
    for (const ObjectId out : outset) os << out << ' ';
    os << ']';
  }
  os << "\noutref_insets";
  for (const auto& [outref, inset] : r.back_info.outref_insets) {
    os << ' ' << outref << ":[";
    for (const ObjectId in : inset) os << in << ' ';
    os << ']';
  }
  os << "\nstats " << r.stats.objects_marked_clean << ' '
     << r.stats.objects_marked_suspect << ' ' << r.stats.objects_swept << ' '
     << r.stats.edges_scanned_clean << ' ' << r.stats.suspect_objects_traced
     << ' ' << r.stats.suspect_edges_scanned << ' '
     << r.stats.suspected_inrefs << ' ' << r.stats.suspected_outrefs << '\n';
  return os.str();
}

struct RunFingerprint {
  std::vector<std::string> trace_dumps;  // one final trace per site
  std::string world;                     // end-to-end outcome
};

// Builds a seeded world (random graph + a distributed cycle), runs rounds
// through the configured thread counts, then computes one more concurrent
// trace batch and fingerprints both the per-site TraceResults and the
// end-to-end outcome (objects, reclaims, messages, verdicts, sim clock).
RunFingerprint RunWorld(std::uint64_t seed, std::size_t mark_threads,
                        std::size_t trace_threads, bool incremental) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  config.mark_threads = mark_threads;
  config.trace_threads = trace_threads;
  config.incremental_trace = incremental;
  System system(4, config, {}, /*seed=*/seed + 1);
  Rng rng(seed * 977 + 13);
  workload::BuildRandomGraph(
      system, {.sites = 4, .objects_per_site = 48, .slots_per_object = 3},
      rng);
  workload::BuildCycle(system, {.sites = 4, .objects_per_site = 2});
  system.RunRounds(6);

  std::vector<Site*> sites;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    sites.push_back(&system.site(s));
  }
  ParallelTraceExecutor executor(trace_threads);
  const std::vector<TraceResult> results = executor.ComputeAll(sites);

  RunFingerprint fp;
  for (const TraceResult& result : results) {
    fp.trace_dumps.push_back(DumpTraceResult(result));
  }
  const BackTracerStats bt = system.AggregateBackTracerStats();
  std::ostringstream os;
  os << system.TotalObjects() << ' ' << system.TotalObjectsReclaimed() << ' '
     << system.network().stats().inter_site_sent << ' '
     << bt.traces_started << ' ' << bt.traces_completed_garbage << ' '
     << bt.traces_completed_live << ' ' << system.scheduler().now();
  fp.world = os.str();
  return fp;
}

void ExpectSameFingerprint(const RunFingerprint& base,
                           const RunFingerprint& twin,
                           const std::string& label) {
  EXPECT_EQ(base.world, twin.world) << label;
  ASSERT_EQ(base.trace_dumps.size(), twin.trace_dumps.size()) << label;
  for (std::size_t s = 0; s < base.trace_dumps.size(); ++s) {
    EXPECT_EQ(base.trace_dumps[s], twin.trace_dumps[s])
        << label << ", site " << s;
  }
}

TEST(ParallelMarkTwinTest, ThreadCountsAgreeOverTenSeeds) {
  // The acceptance matrix: mark_threads / trace_threads in {1, 2, 8} over 10
  // workload seeds, with incremental traces both off and on. Thread counts
  // must never change results — but trace_threads > 1 deliberately switches
  // RunRound to the snapshot schedule (all sites trace the same pre-round
  // state; documented since the knob was added), so the comparison is within
  // each schedule: mark_threads variants against the sequential baseline
  // (whose mark_threads = 1 leg is the untouched seed code path), and every
  // parallel-round combination against the minimal parallel-round run.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    for (const bool incremental : {false, true}) {
      const std::string inc_label = incremental ? ", incremental" : "";
      const RunFingerprint seq = RunWorld(seed, 1, 1, incremental);
      for (const std::size_t mark : {2, 8}) {
        std::ostringstream label;
        label << "seed " << seed << ", mark_threads " << mark
              << ", trace_threads 1" << inc_label;
        ExpectSameFingerprint(seq, RunWorld(seed, mark, 1, incremental),
                              label.str());
      }
      const RunFingerprint par = RunWorld(seed, 1, 2, incremental);
      const std::vector<std::pair<std::size_t, std::size_t>> par_variants = {
          {1, 8}, {2, 2}, {8, 8}};
      for (const auto& [mark, trace] : par_variants) {
        std::ostringstream label;
        label << "seed " << seed << ", mark_threads " << mark
              << ", trace_threads " << trace << inc_label;
        ExpectSameFingerprint(par, RunWorld(seed, mark, trace, incremental),
                              label.str());
      }
    }
    // Incremental reuse is exact, so it must not change outcomes either —
    // checked on both round schedules.
    ExpectSameFingerprint(RunWorld(seed, 1, 1, false),
                          RunWorld(seed, 8, 1, true),
                          "incremental cross-check, sequential rounds");
    ExpectSameFingerprint(RunWorld(seed, 1, 2, false),
                          RunWorld(seed, 8, 8, true),
                          "incremental cross-check, parallel rounds");
  }
}

TEST(ParallelMarkTwinTest, ParallelMarkCollectsCyclesEndToEnd) {
  // A system running everything through the two-level parallel path must
  // still collect the distributed cycle and hold every invariant.
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  config.mark_threads = 4;
  config.trace_threads = 4;
  System system(4, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 2});
  system.RunRounds(25);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id << " leaked";
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty()) << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckAllInvariants().empty())
      << system.CheckAllInvariants();
  // The shared pool actually carried tasks (sites and/or shards).
  EXPECT_GT(system.worker_pool().stats().batches, 0u);
}

TEST(ParallelMarkTwinTest, LargeSingleSiteHeapMatchesSequentialMark) {
  // One big site stresses the work-stealing traversal itself (many slabs,
  // deep object graph) rather than the per-site fan-out.
  auto run = [](std::size_t mark_threads) {
    CollectorConfig config;
    config.mark_threads = mark_threads;
    System system(2, config, {}, /*seed=*/3);
    Rng rng(41);
    workload::BuildRandomGraph(system,
                               {.sites = 2,
                                .objects_per_site = 3000,
                                .slots_per_object = 4,
                                .remote_edge_fraction = 0.02},
                               rng);
    system.RunRounds(2);
    std::vector<Site*> sites = {&system.site(0), &system.site(1)};
    ParallelTraceExecutor executor(1);
    std::string dumps;
    for (const TraceResult& r : executor.ComputeAll(sites)) {
      dumps += DumpTraceResult(r);
    }
    return dumps;
  };
  const std::string sequential = run(1);
  EXPECT_EQ(sequential, run(2));
  EXPECT_EQ(sequential, run(8));
}

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.RunBatch(
      hits.size(),
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const WorkerPoolStats stats = pool.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.tasks_run, 100u);
  EXPECT_GE(stats.occupancy(), 0.0);
  EXPECT_LE(stats.occupancy(), 1.0);
}

TEST(WorkerPoolTest, ZeroThreadPoolRunsInline) {
  // max(trace_threads, mark_threads) == 1 builds a 0-thread pool: the caller
  // drains every batch itself and no thread is ever spawned.
  WorkerPool pool(0);
  int sum = 0;
  pool.RunBatch(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
  EXPECT_EQ(pool.stats().pool_tasks_run, 0u);
  EXPECT_EQ(pool.stats().tasks_run, 10u);
}

TEST(WorkerPoolTest, PropagatesTheFirstException) {
  WorkerPool pool(2);
  EXPECT_THROW(
      pool.RunBatch(
          8,
          [](std::size_t i) {
            if (i == 3) throw std::runtime_error("task failed");
          },
          3),
      std::runtime_error);
  // The pool survives a failed batch and keeps serving.
  int ran = 0;
  pool.RunBatch(4, [&](std::size_t) { ++ran; }, 1);
  EXPECT_EQ(ran, 4);
}

TEST(WorkerPoolTest, NestedBatchesDoNotDeadlock) {
  // Two-level scheduling: a coarse task blocks on an inner batch on the SAME
  // pool. Caller participation guarantees progress even when every pool
  // thread is parked in an outer task.
  WorkerPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.RunBatch(
      4,
      [&](std::size_t) {
        pool.RunBatch(
            4,
            [&](std::size_t) {
              inner_runs.fetch_add(1, std::memory_order_relaxed);
            },
            3);
      },
      3);
  EXPECT_EQ(inner_runs.load(), 16);
}

}  // namespace
}  // namespace dgc
