// Property-based tests: across many random worlds, seeds, and schedules, the
// collector must satisfy its two contracts —
//   SAFETY:        no truly live object is ever reclaimed;
//   COMPLETENESS:  after enough rounds, no garbage remains.
// Randomness covers graph shape, network latency/jitter, message loss (with
// timeouts enabled), and concurrent mutator churn.
#include <gtest/gtest.h>

#include <vector>

#include "core/system.h"
#include "mutator/session.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.back_threshold_increment = 3;
  return config;
}

class RandomWorld : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorld, SafetyAndCompletenessOnStaticGraphs) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  System system(4, Config(), NetworkConfig{}, seed);
  workload::RandomGraphSpec spec;
  spec.sites = 4;
  spec.objects_per_site = 30;
  spec.slots_per_object = 3;
  spec.wire_probability = 0.6;
  spec.remote_edge_fraction = 0.25;
  const auto objects = workload::BuildRandomGraph(system, spec, rng);

  // Root a random subset of objects.
  std::vector<ObjectId> roots;
  for (const ObjectId id : objects) {
    if (rng.NextBool(0.05)) {
      system.SetPersistentRoot(id);
      roots.push_back(id);
    }
  }

  const std::set<ObjectId> live_before = system.ComputeLiveSet();
  system.RunRounds(40);

  // Safety: everything truly live still exists, and the live set is
  // unchanged (no mutations happened).
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_EQ(system.ComputeLiveSet(), live_before) << "seed " << seed;
  // Completeness: every survivor is reachable.
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
  EXPECT_EQ(system.TotalObjects(), live_before.size()) << "seed " << seed;
  // Referential integrity holds in the quiesced state.
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << "seed " << seed << ": " << system.CheckReferentialIntegrity();
  // §6.1.1 Local Safety Invariant: every suspected outref's inset covers all
  // inrefs it is locally reachable from.
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << "seed " << seed << ": " << system.CheckLocalSafetyInvariant();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorld,
                         ::testing::Range<std::uint64_t>(1, 41));

class RandomWorldLossy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorldLossy, SafetyUnderMessageLossAndJitter) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919);
  CollectorConfig config = Config();
  config.back_call_timeout = 400;
  config.report_timeout = 4000;
  NetworkConfig net;
  net.latency = 5;
  net.latency_jitter = 20;
  net.drop_probability = 0.05;  // recoverable via refresh + timeouts
  System system(4, config, net, seed);

  workload::RandomGraphSpec spec;
  spec.sites = 4;
  spec.objects_per_site = 20;
  spec.remote_edge_fraction = 0.3;
  const auto objects = workload::BuildRandomGraph(system, spec, rng);
  for (const ObjectId id : objects) {
    if (rng.NextBool(0.05)) system.SetPersistentRoot(id);
  }
  const std::set<ObjectId> live_before = system.ComputeLiveSet();
  system.RunRounds(50);
  // Loss may delay collection arbitrarily, but must never break safety.
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_EQ(system.ComputeLiveSet(), live_before) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorldLossy,
                         ::testing::Range<std::uint64_t>(1, 21));

class TraceSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceSoundness, GarbageOutcomesOnlyCondemnTrueGarbage) {
  // At the granularity of a single back trace: whatever the outcome, every
  // inref flagged by a Garbage report must be truly unreachable per the
  // oracle (Live outcomes are always safe; premature Live is allowed).
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 6364136223846793005ULL);
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.enable_back_tracing = false;  // traces fired by hand below
  System system(4, config, NetworkConfig{}, seed);
  workload::RandomGraphSpec spec;
  spec.sites = 4;
  spec.objects_per_site = 25;
  spec.remote_edge_fraction = 0.3;
  const auto objects = workload::BuildRandomGraph(system, spec, rng);
  for (const ObjectId id : objects) {
    if (rng.NextBool(0.06)) system.SetPersistentRoot(id);
  }
  system.RunRounds(8);  // ripen distances; acyclic garbage largely gone

  const std::set<ObjectId> live = system.ComputeLiveSet();
  // Fire one trace from every suspected outref in the system.
  for (SiteId s = 0; s < 4; ++s) {
    std::vector<ObjectId> suspects;
    for (const auto& [ref, entry] : system.site(s).tables().outrefs()) {
      if (!entry.clean() && entry.distance != kDistanceInfinity) {
        suspects.push_back(ref);
      }
    }
    for (const ObjectId ref : suspects) {
      if (system.site(s).tables().FindOutref(ref) == nullptr) continue;
      system.site(s).back_tracer().StartTrace(ref);
      system.SettleNetwork();
    }
  }
  // Every flagged inref must be true garbage.
  for (SiteId s = 0; s < 4; ++s) {
    for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
      if (entry.garbage_flagged) {
        EXPECT_FALSE(live.contains(obj))
            << "seed " << seed << ": live inref " << obj << " condemned";
      }
    }
  }
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  // And the follow-up sweeps reclaim without hurting live objects.
  system.RunRounds(6);
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_EQ(system.ComputeLiveSet(), live) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSoundness,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalWorlds) {
  // The whole point of the discrete-event design: bit-for-bit reproducible
  // runs. Two systems driven identically must agree on every statistic.
  const auto run = [](std::uint64_t seed) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.estimated_cycle_length = 6;
    NetworkConfig net;
    net.latency = 5;
    net.latency_jitter = 9;
    net.drop_probability = 0.03;
    config.back_call_timeout = 300;
    config.report_timeout = 2000;
    auto system = std::make_unique<System>(4, config, net, seed);
    Rng rng(seed + 17);
    workload::RandomGraphSpec spec;
    spec.sites = 4;
    spec.objects_per_site = 30;
    const auto objects = workload::BuildRandomGraph(*system, spec, rng);
    for (const ObjectId id : objects) {
      if (rng.NextBool(0.05)) system->SetPersistentRoot(id);
    }
    system->RunRounds(15);
    struct Fingerprint {
      std::size_t objects;
      std::uint64_t reclaimed, msgs, dropped, traces, garbage, live;
      SimTime now;
      bool operator==(const Fingerprint&) const = default;
    };
    const auto bt = system->AggregateBackTracerStats();
    return Fingerprint{system->TotalObjects(),
                       system->TotalObjectsReclaimed(),
                       system->network().stats().inter_site_sent,
                       system->network().stats().dropped,
                       bt.traces_started,
                       bt.traces_completed_garbage,
                       bt.traces_completed_live,
                       system->scheduler().now()};
  };
  EXPECT_TRUE(run(7) == run(7));
  EXPECT_TRUE(run(8) == run(8));
  EXPECT_FALSE(run(7) == run(8));
}

class ChurnWorld : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnWorld, SafetyUnderConcurrentMutatorChurn) {
  // Mutator sessions create, link, publish and unpublish objects through
  // rooted containers while rounds of local traces and back traces run.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 104729);
  NetworkConfig net;
  net.latency = 8;
  net.latency_jitter = 8;
  System system(3, Config(), net, seed);

  // One rooted container per site.
  std::vector<ObjectId> containers;
  for (SiteId s = 0; s < 3; ++s) {
    const ObjectId container = system.NewObject(s, 4);
    system.SetPersistentRoot(container);
    containers.push_back(container);
  }
  std::vector<std::unique_ptr<Session>> sessions;
  for (SiteId s = 0; s < 3; ++s) {
    sessions.push_back(std::make_unique<Session>(system, s, 100 + s));
    sessions[s]->LoadRoot(containers[s]);
  }

  for (int step = 0; step < 60; ++step) {
    Session& session = *sessions[rng.NextBelow(sessions.size())];
    const ObjectId container = containers[rng.NextBelow(containers.size())];
    const std::size_t slot = rng.NextBelow(4);
    switch (rng.NextBelow(4)) {
      case 0: {  // publish a fresh (possibly self-linking) object
        if (!session.Holds(container)) session.LoadRoot(container);
        const ObjectId fresh = session.Create(2);
        session.Write(fresh, 0, fresh);  // self loop: local cycle fodder
        session.Write(container, slot, fresh);
        session.Release(fresh);
        break;
      }
      case 1: {  // cross-link: copy a reference between containers
        if (!session.Holds(container)) session.LoadRoot(container);
        const ObjectId value = session.Read(container, slot);
        if (value.valid()) {
          const ObjectId other = containers[rng.NextBelow(containers.size())];
          if (!session.Holds(other)) session.LoadRoot(other);
          session.Write(other, rng.NextBelow(4), value);
          session.Release(value);
        }
        break;
      }
      case 2: {  // unpublish: clear a container slot
        if (!session.Holds(container)) session.LoadRoot(container);
        session.Write(container, slot, kInvalidObject);
        break;
      }
      case 3: {  // cross-site cycle: fresh objects on two sites, linked
        Session& peer = *sessions[(session.home() + 1) % 3];
        if (peer.busy()) break;
        const ObjectId a = session.Create(1);
        const ObjectId b = peer.Create(1);
        if (!session.Holds(b)) {
          // Session obtains b by publication handoff via a container.
          if (!peer.Holds(containers[0])) peer.LoadRoot(containers[0]);
          peer.Write(containers[0], 3, b);
          if (!session.Holds(containers[0])) session.LoadRoot(containers[0]);
          const ObjectId got = session.Read(containers[0], 3);
          if (got.valid()) {
            session.Write(a, 0, got);
            session.Release(got);
          }
        }
        if (!peer.Holds(a)) {
          if (!session.Holds(containers[1])) session.LoadRoot(containers[1]);
          session.Write(containers[1], 3, a);
          if (!peer.Holds(containers[1])) peer.LoadRoot(containers[1]);
          const ObjectId got = peer.Read(containers[1], 3);
          if (got.valid()) {
            peer.Write(b, 0, got);
            peer.Release(got);
          }
        }
        session.Release(a);
        peer.Release(b);
        // Unpublish the handoff slots so the pair can become garbage later.
        session.Write(containers[1], 3, kInvalidObject);
        if (!peer.Holds(containers[0])) peer.LoadRoot(containers[0]);
        peer.Write(containers[0], 3, kInvalidObject);
        break;
      }
    }
    // Interleave collection activity.
    if (step % 5 == 4) system.RunRoundStaggered(7);
    // The safety oracle must hold at every step.
    const std::string violation = system.CheckSafety();
    ASSERT_TRUE(violation.empty())
        << "seed " << seed << " step " << step << ": " << violation;
  }

  // Quiesce: drop all session holds, run plenty of rounds; only
  // container-reachable objects survive.
  for (auto& session : sessions) session->ReleaseAll();
  system.RunRounds(40);
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << "seed " << seed << ": " << system.CheckReferentialIntegrity();
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << "seed " << seed << ": " << system.CheckLocalSafetyInvariant();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnWorld,
                         ::testing::Range<std::uint64_t>(1, 26));

class NonAtomicChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NonAtomicChurn, SlowTracesWithConcurrentMutationStaySafe) {
  // Same contracts with non-atomic local traces (§6.2): every trace takes
  // simulated time, so mutations and back traces overlap trace windows.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31337);
  CollectorConfig config = Config();
  config.local_trace_duration = 60;
  NetworkConfig net;
  net.latency = 10;
  System system(3, config, net, seed);

  std::vector<ObjectId> containers;
  for (SiteId s = 0; s < 3; ++s) {
    const ObjectId container = system.NewObject(s, 3);
    system.SetPersistentRoot(container);
    containers.push_back(container);
  }
  Session session(system, 0, 1);

  for (int step = 0; step < 40; ++step) {
    const ObjectId container = containers[rng.NextBelow(containers.size())];
    if (!session.Holds(container)) session.LoadRoot(container);
    const std::size_t slot = rng.NextBelow(3);
    if (rng.NextBool(0.6)) {
      const ObjectId fresh = session.Create(1);
      session.Write(container, slot, fresh);
      session.Release(fresh);
    } else {
      session.Write(container, slot, kInvalidObject);
    }
    if (step % 4 == 1) {
      // Start overlapping traces without settling first.
      for (SiteId s = 0; s < 3; ++s) {
        if (!system.site(s).trace_in_flight()) {
          system.site(s).StartLocalTrace();
        }
      }
    }
    const std::string violation = system.CheckSafety();
    ASSERT_TRUE(violation.empty())
        << "seed " << seed << " step " << step << ": " << violation;
  }
  session.ReleaseAll();
  system.SettleNetwork();
  system.RunRounds(30);
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonAtomicChurn,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace dgc
