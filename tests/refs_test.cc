// Unit tests for the inref/outref tables.
#include <gtest/gtest.h>

#include "common/check.h"
#include "refs/tables.h"

namespace dgc {
namespace {

class RefTablesTest : public ::testing::Test {
 protected:
  CollectorConfig config_;
  RefTables tables_{/*site=*/1, config_};
  const ObjectId local_{1, 10};
  const ObjectId remote_{2, 20};
};

TEST_F(RefTablesTest, EnsureInrefCreatesWithConfiguredThreshold) {
  InrefEntry& entry = tables_.EnsureInref(local_);
  EXPECT_EQ(entry.back_threshold, config_.initial_back_threshold());
  EXPECT_TRUE(entry.sources.empty());
  EXPECT_EQ(entry.distance(), kDistanceInfinity);
}

TEST_F(RefTablesTest, InrefMustBeLocal) {
  EXPECT_THROW(tables_.EnsureInref(remote_), InvariantViolation);
}

TEST_F(RefTablesTest, AddSourceTracksDistanceMinimum) {
  tables_.AddInrefSource(local_, 2, 5);
  tables_.AddInrefSource(local_, 3, 2);
  const InrefEntry* entry = tables_.FindInref(local_);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->distance(), 2u);
  tables_.AddInrefSource(local_, 3, 9);  // update overwrites
  EXPECT_EQ(entry->distance(), 5u);
}

TEST_F(RefTablesTest, OwnSiteCannotBeSource) {
  EXPECT_THROW(tables_.AddInrefSource(local_, 1, 1), InvariantViolation);
}

TEST_F(RefTablesTest, RemoveLastSourceRemovesEntry) {
  tables_.AddInrefSource(local_, 2, 1);
  tables_.AddInrefSource(local_, 3, 1);
  EXPECT_FALSE(tables_.RemoveInrefSource(local_, 2));
  EXPECT_NE(tables_.FindInref(local_), nullptr);
  EXPECT_TRUE(tables_.RemoveInrefSource(local_, 3));
  EXPECT_EQ(tables_.FindInref(local_), nullptr);
}

TEST_F(RefTablesTest, RemoveSourceOfMissingInrefIsNoop) {
  EXPECT_FALSE(tables_.RemoveInrefSource(local_, 2));
}

TEST_F(RefTablesTest, InrefCleanlinessFollowsDistanceThreshold) {
  config_.suspicion_threshold = 3;
  InrefEntry& entry = tables_.AddInrefSource(local_, 2, 3);
  EXPECT_TRUE(entry.clean(3));
  entry.sources[2] = SourceInfo{4, 0};
  EXPECT_FALSE(entry.clean(3));
  entry.clean_override = true;  // transfer barrier
  EXPECT_TRUE(entry.clean(3));
  entry.garbage_flagged = true;  // condemned wins over everything
  EXPECT_FALSE(entry.clean(3));
}

TEST_F(RefTablesTest, OutrefCleanlinessSources) {
  auto [entry, created] = tables_.EnsureOutref(remote_);
  EXPECT_TRUE(created);
  EXPECT_FALSE(entry->clean());
  entry->traced_clean = true;
  EXPECT_TRUE(entry->clean());
  entry->traced_clean = false;
  entry->clean_override = true;
  EXPECT_TRUE(entry->clean());
  entry->clean_override = false;
  entry->pin_count = 1;
  EXPECT_TRUE(entry->clean());
}

TEST_F(RefTablesTest, OutrefMustBeRemote) {
  EXPECT_THROW(tables_.EnsureOutref(local_), InvariantViolation);
}

TEST_F(RefTablesTest, EnsureOutrefIdempotent) {
  auto [first, created1] = tables_.EnsureOutref(remote_);
  auto [second, created2] = tables_.EnsureOutref(remote_);
  EXPECT_TRUE(created1);
  EXPECT_FALSE(created2);
  EXPECT_EQ(first, second);
}

TEST_F(RefTablesTest, RemovingPinnedOutrefThrows) {
  auto [entry, created] = tables_.EnsureOutref(remote_);
  (void)created;
  entry->pin_count = 1;
  EXPECT_THROW(tables_.RemoveOutref(remote_), InvariantViolation);
  entry->pin_count = 0;
  EXPECT_NO_THROW(tables_.RemoveOutref(remote_));
  EXPECT_EQ(tables_.FindOutref(remote_), nullptr);
}

TEST_F(RefTablesTest, VisitedMarksPerTrace) {
  InrefEntry& entry = tables_.EnsureInref(local_);
  const TraceId t1{0, 1}, t2{0, 2};
  EXPECT_FALSE(entry.IsVisitedBy(t1));
  entry.MarkVisited(t1);
  EXPECT_TRUE(entry.IsVisitedBy(t1));
  EXPECT_FALSE(entry.IsVisitedBy(t2));
  entry.MarkVisited(t2);
  entry.ClearVisited(t1);
  EXPECT_FALSE(entry.IsVisitedBy(t1));
  EXPECT_TRUE(entry.IsVisitedBy(t2));
}

TEST_F(RefTablesTest, TablesIterateInDeterministicOrder) {
  tables_.EnsureOutref(ObjectId{3, 5});
  tables_.EnsureOutref(ObjectId{2, 9});
  tables_.EnsureOutref(ObjectId{2, 1});
  ObjectId previous{};
  bool first = true;
  for (const auto& [ref, entry] : tables_.outrefs()) {
    (void)entry;
    if (!first) EXPECT_LT(previous, ref);
    previous = ref;
    first = false;
  }
}

}  // namespace
}  // namespace dgc
