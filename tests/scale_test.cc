// Scale engine tests: topology-plan determinism, the power-law shape of the
// generated reference graph, reservoir percentiles, and a down-scaled
// (4-site / 10^4-object) open-loop engine smoke run under the twin oracles.
// The full 100-site / 10^6-object configuration runs in bench_scale; this
// suite keeps the same machinery honest at ctest cost (label: scale).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <tuple>
#include <vector>

#include "core/latency_reservoir.h"
#include "workload/scale.h"

namespace dgc {
namespace {

// --- Topology plan ----------------------------------------------------------

workload::ScaleTopologySpec SmallSpec(std::uint64_t seed) {
  workload::ScaleTopologySpec spec;
  spec.sites = 6;
  spec.objects_per_site = 400;
  spec.seed = seed;
  return spec;
}

TEST(ScaleTopologyTest, PlanIsDeterministicAcrossTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto a = workload::BuildScaleTopology(SmallSpec(seed));
    const auto b = workload::BuildScaleTopology(SmallSpec(seed));
    ASSERT_EQ(a.edges, b.edges) << "seed " << seed;
    ASSERT_EQ(a.roots, b.roots) << "seed " << seed;
    ASSERT_FALSE(a.edges.empty()) << "seed " << seed;
  }
}

TEST(ScaleTopologyTest, DifferentSeedsYieldDifferentPlans) {
  const auto a = workload::BuildScaleTopology(SmallSpec(1));
  const auto b = workload::BuildScaleTopology(SmallSpec(2));
  EXPECT_NE(a.edges, b.edges);
}

TEST(ScaleTopologyTest, PlanRespectsSpecBounds) {
  const auto spec = SmallSpec(3);
  const auto plan = workload::BuildScaleTopology(spec);
  for (const auto& e : plan.edges) {
    ASSERT_LT(e.from_site, spec.sites);
    ASSERT_LT(e.to_site, spec.sites);
    ASSERT_LT(e.from_ordinal, spec.objects_per_site);
    ASSERT_LT(e.to_ordinal, spec.objects_per_site);
    ASSERT_LT(e.slot, spec.slots_per_object);
    // Self-edges are skipped at plan time: an object never wires to itself.
    ASSERT_FALSE(e.from_site == e.to_site && e.from_ordinal == e.to_ordinal);
  }
  const auto rooted = static_cast<std::size_t>(
      spec.rooted_fraction * static_cast<double>(spec.objects_per_site));
  EXPECT_EQ(plan.roots.size(), spec.sites * rooted);
  // Wiring probability: edge count tracks wire_probability of all slots.
  const double slots = static_cast<double>(
      spec.sites * spec.objects_per_site * spec.slots_per_object);
  const double wired = static_cast<double>(plan.edges.size()) / slots;
  EXPECT_NEAR(wired, spec.wire_probability, 0.02);
}

// Rank-biased target sampling concentrates references on low ordinals: the
// top decile of ranks draws a 0.1^(1/hub_bias) share of all references.
TEST(ScaleTopologyTest, HubBiasShapesTheInDegreeDistribution) {
  for (const double bias : {1.0, 2.0, 4.0}) {
    workload::ScaleTopologySpec spec;
    spec.sites = 4;
    spec.objects_per_site = 5'000;
    spec.hub_bias = bias;
    spec.seed = 11;
    const auto plan = workload::BuildScaleTopology(spec);
    ASSERT_GT(plan.edges.size(), 50'000u);
    const std::uint32_t decile =
        static_cast<std::uint32_t>(spec.objects_per_site / 10);
    std::size_t top = 0;
    for (const auto& e : plan.edges) {
      if (e.to_ordinal < decile) ++top;
    }
    const double share =
        static_cast<double>(top) / static_cast<double>(plan.edges.size());
    const double expected = std::pow(0.1, 1.0 / bias);
    EXPECT_NEAR(share, expected, 0.03) << "hub_bias " << bias;
  }
}

TEST(ScaleTopologyTest, InstantiationMatchesThePlan) {
  const auto spec = SmallSpec(5);
  const auto plan = workload::BuildScaleTopology(spec);
  System system(spec.sites, CollectorConfig{});
  const auto ids = workload::InstantiateScaleTopology(system, plan);
  ASSERT_EQ(ids.size(), spec.sites);
  for (const auto& site_ids : ids) {
    ASSERT_EQ(site_ids.size(), spec.objects_per_site);
    for (const ObjectId id : site_ids) ASSERT_TRUE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
}

// --- Latency reservoir ------------------------------------------------------

TEST(LatencyReservoirTest, ExactQuantilesBelowCapacity) {
  LatencyReservoir res(128, 1);
  for (SimTime v = 1; v <= 100; ++v) res.Record(v);
  EXPECT_EQ(res.count(), 100u);
  EXPECT_EQ(res.size(), 100u);
  EXPECT_EQ(res.Quantile(0.0), 1);
  // Nearest-rank with rounding: q * (n-1) + 0.5 -> index 50 -> value 51.
  EXPECT_EQ(res.Quantile(0.5), 51);
  EXPECT_EQ(res.Quantile(0.99), 99);
  EXPECT_EQ(res.Quantile(1.0), 100);
}

TEST(LatencyReservoirTest, BoundedMemoryUnderLongStreams) {
  LatencyReservoir res(64, 2);
  for (SimTime v = 0; v < 100'000; ++v) res.Record(1'000);
  EXPECT_EQ(res.count(), 100'000u);
  EXPECT_EQ(res.size(), 64u) << "reservoir must not grow past capacity";
  // Every sample in the stream is identical, so any subsample agrees.
  EXPECT_EQ(res.Quantile(0.5), 1'000);
  EXPECT_EQ(res.Quantile(0.99), 1'000);
}

TEST(LatencyReservoirTest, EmptyReservoirReportsZero) {
  LatencyReservoir res(16, 3);
  EXPECT_TRUE(res.empty());
  EXPECT_EQ(res.Quantile(0.5), 0);
}

// --- Down-scaled open-loop engine smoke (4 sites, 10^4 objects) -------------

TEST(ScaleEngineTest, OpenLoopSmokeUnderTwinOracles) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_threshold_increment = 2;
  System system(4, config);

  workload::ScaleTopologySpec topo;
  topo.sites = 4;
  topo.objects_per_site = 2'500;  // 10^4 objects total
  topo.seed = 42;
  const auto plan = workload::BuildScaleTopology(topo);
  workload::InstantiateScaleTopology(system, plan);

  workload::ScaleDriverSpec drive;
  drive.duration = 8'000;
  drive.mean_interarrival = 20;
  drive.mean_lifetime = 300;
  drive.round_period = 400;
  drive.seed = 7;
  workload::ScaleDriver driver(system, drive);
  driver.Run();

  EXPECT_GT(driver.stats().cohorts_spawned, 100u);
  EXPECT_GT(driver.stats().cohorts_severed, 50u);
  EXPECT_GT(driver.stats().rounds_started, 10u);
  EXPECT_EQ(driver.stats().drove_for, drive.duration);

  // Mid-flight oracles: settle in-flight messages, then no live object may
  // have been reclaimed and every ref-table row must be consistent.
  system.SettleNetwork();
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << system.CheckLocalSafetyInvariant();

  // Closed-loop epilogue: every severed ring must eventually be reclaimed
  // (completeness), with time-to-collect samples harvested along the way.
  ASSERT_TRUE(driver.Quiesce()) << "backlog " << driver.backlog();
  EXPECT_EQ(driver.backlog(), 0u);
  EXPECT_EQ(driver.stats().cohorts_collected, driver.stats().cohorts_severed);
  EXPECT_GT(driver.time_to_collect().count(), 0u);
  EXPECT_GE(driver.time_to_collect().Quantile(0.99),
            driver.time_to_collect().Quantile(0.5));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

// The open-loop engine is deterministic end to end: identical specs and
// seeds produce identical stats and identical latency samples.
TEST(ScaleEngineTest, OpenLoopRunsAreReproducible) {
  auto run = [] {
    CollectorConfig config;
    config.suspicion_threshold = 2;
    System system(4, config);
    workload::ScaleTopologySpec topo;
    topo.sites = 4;
    topo.objects_per_site = 500;
    topo.seed = 9;
    workload::InstantiateScaleTopology(system,
                                       workload::BuildScaleTopology(topo));
    workload::ScaleDriverSpec drive;
    drive.duration = 4'000;
    drive.mean_interarrival = 25;
    drive.seed = 13;
    workload::ScaleDriver driver(system, drive);
    driver.Run();
    driver.Quiesce();
    return std::tuple{driver.stats().mutations,
                      driver.stats().cohorts_collected,
                      driver.time_to_collect().Quantile(0.5),
                      driver.time_to_collect().Quantile(0.99)};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dgc
