// End-to-end scenarios from the paper's figures (1-3) driving the whole
// pipeline: local tracing + distance propagation + suspicion + back tracing
// + report phase + reclamation.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"
#include "workload/figures.h"

namespace dgc {
namespace {

CollectorConfig SmallThresholds() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;  // back threshold D2 = 5
  config.back_threshold_increment = 2;
  return config;
}

// --- Figure 1 --------------------------------------------------------------

TEST(Figure1Test, LocalTracingCollectsAcyclicGarbageWithLocality) {
  CollectorConfig config = SmallThresholds();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto w = workload::BuildFigure1(system);

  // Round 1: Q collects d and drops its outref for e; the update message
  // lets P collect e in round 2 — exactly the paper's §2 narrative.
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(w.d));
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(w.e));

  // Live objects survive.
  for (const ObjectId id : {w.a, w.b, w.c}) {
    EXPECT_TRUE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(Figure1Test, WithoutBackTracingTheCycleLeaksForever) {
  CollectorConfig config = SmallThresholds();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto w = workload::BuildFigure1(system);
  system.RunRounds(20);
  // f and g are garbage but never collected: the failure that motivates the
  // paper.
  EXPECT_TRUE(system.ObjectExists(w.f));
  EXPECT_TRUE(system.ObjectExists(w.g));
  EXPECT_FALSE(system.CheckCompleteness().empty());
}

TEST(Figure1Test, BackTracingCollectsTheCycle) {
  System system(3, SmallThresholds());
  const auto w = workload::BuildFigure1(system);
  system.RunRounds(20);
  EXPECT_FALSE(system.ObjectExists(w.f));
  EXPECT_FALSE(system.ObjectExists(w.g));
  for (const ObjectId id : {w.a, w.b, w.c}) {
    EXPECT_TRUE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
  const BackTracerStats stats = system.AggregateBackTracerStats();
  EXPECT_GE(stats.traces_completed_garbage, 1u);
}

TEST(Figure1Test, DistancesOfCyclicGarbageGrowWithoutBound) {
  CollectorConfig config = SmallThresholds();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto w = workload::BuildFigure1(system);
  Distance previous = 0;
  for (int round = 0; round < 8; ++round) {
    system.RunRound();
    const InrefEntry* inref_g = system.site(2).tables().FindInref(w.g);
    ASSERT_NE(inref_g, nullptr);
    const Distance d = inref_g->distance();
    EXPECT_GE(d, previous);
    previous = d;
  }
  // Theorem of Section 3: after d rounds the estimated distance is >= d.
  EXPECT_GE(previous, 8u);
}

TEST(Figure1Test, LiveObjectDistanceStaysAtTruth) {
  System system(3, SmallThresholds());
  const auto w = workload::BuildFigure1(system);
  system.RunRounds(6);
  // c is reachable root->c directly (distance 1, per §3's worked example).
  const InrefEntry* inref_c = system.site(2).tables().FindInref(w.c);
  ASSERT_NE(inref_c, nullptr);
  EXPECT_EQ(inref_c->distance(), 1u);
}

// --- Multi-site cycles of various shapes -----------------------------------

TEST(CycleCollectionTest, TwoSiteCycleInvolvesOnlyItsSites) {
  System system(4, SmallThresholds());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  // An unrelated live object on site 3.
  const ObjectId bystander = system.NewObject(3, 0);
  system.SetPersistentRoot(bystander);

  system.network().ResetStats();
  system.RunRounds(20);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
  // Locality: no back-trace call ever reached site 3 (it has no suspected
  // iorefs), so its back tracer handled nothing.
  EXPECT_EQ(system.site(3).back_tracer().stats().calls_handled, 0u);
}

TEST(CycleCollectionTest, LongCycleAcrossManySites) {
  CollectorConfig config = SmallThresholds();
  config.estimated_cycle_length = 10;
  System system(6, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 6, .objects_per_site = 2});
  system.RunRounds(30);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

TEST(CycleCollectionTest, TetheredCycleStaysAliveUntilCut) {
  System system(3, SmallThresholds());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const ObjectId tether = workload::TetherToRoot(system, cycle.head(), 2);

  system.RunRounds(25);
  for (const ObjectId id : cycle.objects) {
    EXPECT_TRUE(system.ObjectExists(id));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();

  // Cut the tether: the cycle is garbage now and must go.
  system.Unwire(tether, 0);
  system.RunRounds(25);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id));
  }
}

TEST(CycleCollectionTest, CycleWithHangingChainFullyReclaimed) {
  System system(4, SmallThresholds());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 2});
  // Garbage chain dangling off the cycle across other sites: dies after the
  // cycle does, via regular update messages (completeness cascades).
  const auto chain = workload::AttachChain(system, cycle.objects[1], 1, 5);
  system.RunRounds(40);
  for (const ObjectId id : chain) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_EQ(system.TotalObjects(), 0u);
}

// --- Figure 2: traces start from outrefs -----------------------------------

TEST(Figure2Test, BothCyclesCollectedCompletely) {
  System system(3, SmallThresholds());
  const auto w = workload::BuildFigure2(system);
  system.RunRounds(25);
  for (const ObjectId id : {w.a, w.b, w.c, w.d}) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
}

TEST(Figure2Test, InsetOfSharedOutrefHasBothInrefs) {
  CollectorConfig config = SmallThresholds();
  config.enable_back_tracing = false;
  System system(3, config);
  const auto w = workload::BuildFigure2(system);
  system.RunRounds(6);  // enough for distances to pass the threshold
  const auto& info = system.site(1).back_info();
  const auto inset = info.outref_insets.find(w.c);
  ASSERT_NE(inset, info.outref_insets.end());
  EXPECT_EQ(inset->second.size(), 2u);  // {a, b} — Figure 2's point
}

// --- Figure 3: branching trace with a live suspect --------------------------

TEST(Figure3Test, LiveSuspectSurvivesBackTrace) {
  System system(5, SmallThresholds());
  const auto w = workload::BuildFigure3(system);
  system.RunRounds(25);
  // Everything is reachable from the root: nothing may be collected, even
  // though distances of b/c/d may cross the suspicion threshold.
  for (const ObjectId id : {w.root, w.s1, w.a, w.b, w.c, w.d}) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(Figure3Test, CutRootPathMakesEverythingCollectable) {
  System system(5, SmallThresholds());
  const auto w = workload::BuildFigure3(system);
  system.RunRounds(10);
  system.Unwire(w.s1, 0);  // delete the long path from the root
  system.RunRounds(30);
  for (const ObjectId id : {w.a, w.b, w.c, w.d}) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(w.root));
  EXPECT_TRUE(system.ObjectExists(w.s1));
}

}  // namespace
}  // namespace dgc
