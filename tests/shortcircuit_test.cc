// Tests for the short-circuit Live-reply optimization (§4.4's "return Live
// immediately" pseudocode semantics, opt-in via
// CollectorConfig::short_circuit_live_replies).
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

// World where a trace from outref o (to y@1) forks two branches:
//   * the FAST branch reaches a mutator-pinned (clean) outref in one remote
//     round trip -> Live;
//   * the SLOW branch walks a garbage ring over sites 4..7 before closing
//     -> Garbage, many round trips later.
// Short-circuiting answers at the fast branch; waiting answers at the slow.
struct ForkWorld {
  ObjectId y;        // suspect target at site 1; the trace starts from its
                     // outref at site 0
  ObjectId x1, x2;   // site-0 holders of y (= the inset of outref y)
  ObjectId pinned;   // = x1's remote holder's ref, pinned clean at site 2
};

ForkWorld Build(System& system) {
  ForkWorld w;
  w.y = system.NewObject(1, 0);
  w.x1 = system.NewObject(0, 1);
  w.x2 = system.NewObject(0, 1);
  system.Wire(w.x1, 0, w.y);
  system.Wire(w.x2, 0, w.y);

  // Fast branch: x1 held from site 2 by a member of a {2,3} garbage cycle
  // (so x1's inref distance ripens high), whose outref we will pin.
  const ObjectId g2 = system.NewObject(2, 2);
  const ObjectId g3 = system.NewObject(3, 1);
  system.Wire(g2, 0, g3);
  system.Wire(g3, 0, g2);
  system.Wire(g2, 1, w.x1);
  w.pinned = w.x1;

  // Slow branch: x2 held from a garbage ring spanning sites 4..7.
  const auto ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 1, .first_site = 4});
  system.Wire(ring.objects[0], 1, w.x2);
  return w;
}

struct Result {
  BackResult outcome = BackResult::kGarbage;
  SimTime duration = 0;
};

Result RunForkTrace(bool short_circuit) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 8;
  config.enable_back_tracing = false;  // one manual trace
  config.short_circuit_live_replies = short_circuit;
  config.report_timeout = 100'000;
  NetworkConfig net;
  net.latency = 50;
  System system(8, config, net);
  const ForkWorld w = Build(system);
  system.RunRounds(10);  // ripen everything suspicious

  Site& site0 = system.site(0);
  // Mutator variable takes hold of x1 at site 2: pinned clean, but site 2
  // runs no further local trace, so x1's inref at site 0 keeps its stale
  // suspected distance — the fast branch must discover the pin remotely.
  system.site(2).PinOutref(w.pinned);

  Result result;
  bool done = false;
  site0.back_tracer().set_outcome_observer([&](const TraceOutcome& outcome) {
    done = true;
    result.outcome = outcome.result;
    result.duration = outcome.completed_at - outcome.started_at;
  });
  EXPECT_NE(site0.tables().FindOutref(w.y), nullptr);
  site0.back_tracer().StartTrace(w.y);
  system.SettleNetwork();
  EXPECT_TRUE(done);
  return result;
}

TEST(ShortCircuitTest, BothModesAnswerLive) {
  EXPECT_EQ(RunForkTrace(false).outcome, BackResult::kLive);
  EXPECT_EQ(RunForkTrace(true).outcome, BackResult::kLive);
}

TEST(ShortCircuitTest, ShortCircuitAnswersStrictlyFaster) {
  const Result waiting = RunForkTrace(false);
  const Result eager = RunForkTrace(true);
  // Deterministic simulation: the slow branch needs several extra 50-tick
  // round trips that the eager mode does not wait for.
  EXPECT_LT(eager.duration, waiting.duration);
  EXPECT_GE(waiting.duration - eager.duration, 100);
}

TEST(ShortCircuitTest, StragglerMarksExpireViaReportTimeout) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 8;
  config.enable_back_tracing = false;
  config.short_circuit_live_replies = true;
  config.report_timeout = 500;
  NetworkConfig net;
  net.latency = 50;
  System system(8, config, net);
  const ForkWorld w = Build(system);
  system.RunRounds(10);
  system.site(2).PinOutref(w.pinned);
  system.site(0).back_tracer().StartTrace(w.y);
  system.SettleNetwork();
  // The ring sites may hold stranded visited marks (their replies arrived
  // after the early Live was reported). After the report timeout, a local
  // trace's housekeeping clears them.
  system.scheduler().RunUntil(system.scheduler().now() + 1000);
  system.RunRound();
  for (SiteId s = 0; s < 8; ++s) {
    for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
      EXPECT_TRUE(entry.visited.empty())
          << "stranded mark at site " << s << " inref " << obj;
    }
    for (const auto& [ref, entry] : system.site(s).tables().outrefs()) {
      EXPECT_TRUE(entry.visited.empty())
          << "stranded mark at site " << s << " outref " << ref;
    }
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(ShortCircuitTest, EndToEndCollectionStillWorks) {
  // Garbage answers never short-circuit (they need every branch), so the
  // collection pipeline must behave identically.
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  config.short_circuit_live_replies = true;
  config.report_timeout = 5000;
  System system(3, config);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 3, .objects_per_site = 2});
  system.RunRounds(25);
  for (const ObjectId id : cycle.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty());
}

TEST(ShortCircuitTest, MessageCountUnchanged) {
  // 2E + P is identical in both modes: every call still gets one reply.
  for (const bool mode : {false, true}) {
    CollectorConfig config;
    config.suspicion_threshold = 2;
    config.estimated_cycle_length = 6;
    config.enable_back_tracing = false;
    config.short_circuit_live_replies = mode;
    config.report_timeout = 50'000;
    System system(4, config);
    const auto cycle =
        workload::BuildCycle(system, {.sites = 4, .objects_per_site = 1});
    system.RunRounds(14);
    system.network().ResetStats();
    Site& initiator = system.site(0);
    initiator.back_tracer().StartTrace(
        initiator.tables().outrefs().begin()->first);
    system.SettleNetwork();
    EXPECT_EQ(system.network().stats().count_of<BackLocalCallMsg>(), 4u)
        << "mode " << mode;
    EXPECT_EQ(system.network().stats().count_of<BackReplyMsg>(), 4u)
        << "mode " << mode;
  }
}

}  // namespace
}  // namespace dgc
