// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/scheduler.h"

namespace dgc {
namespace {

TEST(SchedulerTest, StartsAtTimeZeroIdle) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.RunOne());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  EXPECT_TRUE(s.RunUntilIdle());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, FifoWithinSameInstant) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(5, [&order, i] { order.push_back(i); });
  }
  s.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, AfterIsRelativeToNow) {
  Scheduler s;
  SimTime seen = -1;
  s.At(100, [&] {
    s.After(5, [&] { seen = s.now(); });
  });
  s.RunUntilIdle();
  EXPECT_EQ(seen, 105);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) s.After(1, chain);
  };
  s.After(0, chain);
  s.RunUntilIdle();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(s.now(), 49);
}

TEST(SchedulerTest, SchedulingInThePastThrows) {
  Scheduler s;
  s.At(10, [] {});
  s.RunUntilIdle();
  EXPECT_THROW(s.At(5, [] {}), InvariantViolation);
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  std::vector<SimTime> fired;
  s.At(10, [&] { fired.push_back(10); });
  s.At(20, [&] { fired.push_back(20); });
  s.At(30, [&] { fired.push_back(30); });
  s.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SchedulerTest, EventBudgetGuardsLivelock) {
  Scheduler s;
  std::function<void()> forever = [&] { s.After(1, forever); };
  s.After(0, forever);
  EXPECT_THROW(s.RunUntilIdle(100), InvariantViolation);
}

TEST(SchedulerTest, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.At(i, [] {});
  s.RunUntilIdle();
  EXPECT_EQ(s.events_executed(), 7u);
}

}  // namespace
}  // namespace dgc
