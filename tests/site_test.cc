// Site-level protocol tests: insert/update message edge cases, periodic
// update refresh, source leases, pins, app roots, and trace lifecycle
// assertions — the glue logic of core::Site.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  return config;
}

TEST(SiteProtocolTest, InsertAddsSourceAtConservativeDistanceOne) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 1);  // keep alive
  system.network().Send(0, 1, InsertMsg{obj, /*new_source=*/0, kInvalidSite});
  system.SettleNetwork();
  const InrefEntry* inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  ASSERT_TRUE(inref->sources.contains(0));
  EXPECT_EQ(inref->sources.at(0).distance, 1u);
}

TEST(SiteProtocolTest, InsertAcksToThePinnedSite) {
  System system(3, Config());
  const ObjectId obj = system.NewObject(2, 0);
  workload::TetherToRoot(system, obj, 2);
  // Site 0 receives the reference (case 4): creates a pinned outref and
  // registers with the owner; the ack releases the pin.
  bool done = false;
  system.site(0).ReceiveReference(obj, [&] { done = true; });
  const OutrefEntry* outref = system.site(0).tables().FindOutref(obj);
  ASSERT_NE(outref, nullptr);
  EXPECT_EQ(outref->pin_count, 1);
  EXPECT_FALSE(done);  // synchronous insert: waits for the ack
  system.SettleNetwork();
  EXPECT_TRUE(done);
  EXPECT_EQ(outref->pin_count, 0);
  EXPECT_TRUE(outref->clean_override);  // created clean, stays until a trace
}

TEST(SiteProtocolTest, ConcurrentReceiversShareThePendingInsert) {
  NetworkConfig net;
  net.latency = 50;
  System system(2, Config(), net);
  const ObjectId obj = system.NewObject(1, 0);
  workload::TetherToRoot(system, obj, 1);
  int completions = 0;
  system.site(0).ReceiveReference(obj, [&] { ++completions; });
  // Second arrival before the ack: the outref already exists and is clean
  // (case 2) — completes immediately rather than waiting.
  system.site(0).ReceiveReference(obj, [&] { ++completions; });
  EXPECT_EQ(completions, 1);
  system.SettleNetwork();
  EXPECT_EQ(completions, 2);
  // Only one insert went out.
  EXPECT_EQ(system.network().stats().count_of<InsertMsg>(), 1u);
}

TEST(SiteProtocolTest, UpdateForUnknownInrefIgnored) {
  System system(2, Config());
  const ObjectId phantom{1, 999};
  system.network().Send(
      0, 1, UpdateMsg{{UpdateEntry{phantom, /*removed=*/false, 7}}});
  system.network().Send(0, 1,
                        UpdateMsg{{UpdateEntry{phantom, /*removed=*/true, 0}}});
  EXPECT_NO_THROW(system.SettleNetwork());
  EXPECT_EQ(system.site(1).tables().FindInref(phantom), nullptr);
}

TEST(SiteProtocolTest, UpdateFromUnlistedSourceDoesNotAddIt) {
  System system(3, Config());
  const ObjectId obj = system.NewObject(2, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, obj);
  // Site 1 never held the reference; its distance report must not conjure a
  // source entry (only inserts add sources).
  system.network().Send(1, 2,
                        UpdateMsg{{UpdateEntry{obj, /*removed=*/false, 3}}});
  system.SettleNetwork();
  const InrefEntry* inref = system.site(2).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  EXPECT_FALSE(inref->sources.contains(1));
}

TEST(SiteProtocolTest, PeriodicRefreshHealsLostDistanceUpdates) {
  CollectorConfig config = Config();
  config.update_refresh_period = 2;
  System system(2, config);
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, obj);
  system.RunRounds(2);  // distance 1 reported
  // Corrupt the target's view (simulating an earlier lost update).
  system.site(1).tables().FindInref(obj)->sources.at(0).distance = 40;
  system.RunRounds(3);  // a refresh trace resends distance 1
  EXPECT_EQ(system.site(1).tables().FindInref(obj)->distance(), 1u);
}

TEST(SiteProtocolTest, RefreshDisabledLeavesStaleDistance) {
  CollectorConfig config = Config();
  config.update_refresh_period = 0;
  System system(2, config);
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, obj);
  system.RunRounds(2);
  system.site(1).tables().FindInref(obj)->sources.at(0).distance = 40;
  system.RunRounds(3);  // no change at the source: no update sent
  EXPECT_EQ(system.site(1).tables().FindInref(obj)->distance(), 40u);
}

TEST(SiteProtocolTest, SourceLeaseDropsSilentSource) {
  CollectorConfig config = Config();
  config.source_lease_ttl = 100;
  config.update_refresh_period = 0;  // nothing refreshes the lease
  System system(2, config);
  const ObjectId obj = system.NewObject(1, 0);
  // Phantom source: site 0 listed but holds nothing (a removal update was
  // "lost" before the world began).
  system.site(1).tables().AddInrefSource(obj, 0, 1, /*now=*/0);
  system.scheduler().RunUntil(200);
  system.site(1).StartLocalTrace();  // expiry happens before the trace
  system.SettleNetwork();
  EXPECT_EQ(system.site(1).tables().FindInref(obj), nullptr);
  EXPECT_FALSE(system.ObjectExists(obj));
}

TEST(SiteProtocolTest, LeaseRefreshedByUpdatesKeepsSource) {
  CollectorConfig config = Config();
  config.source_lease_ttl = 5'000;  // > a few rounds of refresh traffic
  config.update_refresh_period = 1;
  System system(2, config);
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, obj);
  system.RunRounds(8);
  ASSERT_NE(system.site(1).tables().FindInref(obj), nullptr);
  EXPECT_TRUE(system.ObjectExists(obj));
}

TEST(SiteProtocolTest, SecondTraceWhileInFlightThrows) {
  CollectorConfig config = Config();
  config.local_trace_duration = 100;
  System system(1, config);
  system.site(0).StartLocalTrace();
  EXPECT_THROW(system.site(0).StartLocalTrace(), InvariantViolation);
  system.SettleNetwork();
  EXPECT_NO_THROW(system.site(0).StartLocalTrace());
  system.SettleNetwork();
}

TEST(SiteProtocolTest, AppRootCountsNest) {
  System system(1, Config());
  const ObjectId obj = system.NewObject(0, 0);
  Site& site = system.site(0);
  site.AddAppRoot(obj);
  site.AddAppRoot(obj);
  site.RemoveAppRoot(obj);
  EXPECT_TRUE(site.IsRootObject(obj));
  system.RunRound();
  EXPECT_TRUE(system.ObjectExists(obj));
  site.RemoveAppRoot(obj);
  EXPECT_FALSE(site.IsRootObject(obj));
  EXPECT_THROW(site.RemoveAppRoot(obj), InvariantViolation);
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(obj));
}

TEST(SiteProtocolTest, PinsNestAndForbidTrim) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.SetPersistentRoot(holder);
  system.Wire(holder, 0, obj);
  system.RunRound();
  Site& site0 = system.site(0);
  site0.PinOutref(obj);
  site0.PinOutref(obj);
  system.Unwire(holder, 0);
  system.RunRounds(2);
  EXPECT_NE(site0.tables().FindOutref(obj), nullptr);  // pinned: kept
  EXPECT_TRUE(system.ObjectExists(obj));
  site0.UnpinOutref(obj);
  system.RunRounds(2);
  EXPECT_NE(site0.tables().FindOutref(obj), nullptr);  // one pin left
  site0.UnpinOutref(obj);
  system.RunRounds(2);
  EXPECT_EQ(site0.tables().FindOutref(obj), nullptr);
  EXPECT_FALSE(system.ObjectExists(obj));
}

TEST(SiteProtocolTest, ExtensionHandlerConsumesBeforeBuiltins) {
  System system(2, Config());
  int seen = 0;
  system.site(1).SetExtensionHandler([&](const Envelope& envelope) {
    if (std::holds_alternative<InsertMsg>(envelope.payload)) {
      ++seen;
      return true;  // swallow it
    }
    return false;
  });
  const ObjectId obj = system.NewObject(1, 0);
  system.network().Send(0, 1, InsertMsg{obj, 0, kInvalidSite});
  system.SettleNetwork();
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(system.site(1).tables().FindInref(obj), nullptr);  // not processed
}

TEST(SiteProtocolTest, GarbageFlaggedEntryRemovedByRemovalUpdate) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 0);
  const ObjectId holder = system.NewObject(0, 1);
  system.Wire(holder, 0, obj);  // holder itself is garbage
  InrefEntry* inref = system.site(1).tables().FindInref(obj);
  ASSERT_NE(inref, nullptr);
  inref->garbage_flagged = true;
  system.RunRounds(3);
  // holder swept at site 0 -> outref trimmed -> removal update -> entry gone.
  EXPECT_EQ(system.site(1).tables().FindInref(obj), nullptr);
  EXPECT_FALSE(system.ObjectExists(obj));
}

TEST(SiteProtocolTest, WireLocalTargetTouchesNoTables) {
  System system(2, Config());
  const ObjectId a = system.NewObject(0, 1);
  const ObjectId b = system.NewObject(0, 0);
  system.Wire(a, 0, b);
  EXPECT_TRUE(system.site(0).tables().outrefs().empty());
  EXPECT_TRUE(system.site(0).tables().inrefs().empty());
}

}  // namespace
}  // namespace dgc
