// Kitchen-sink soak: every optional feature enabled at once — piggybacking,
// short-circuit replies, deferred inserts, non-atomic local traces, latency
// jitter, message loss, timeouts, update refresh — under transactional churn
// with a mid-run crash-restart. If the features compose badly, this is where
// it shows.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"
#include "workload/churn.h"

namespace dgc {
namespace {

class KitchenSink : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KitchenSink, EverythingOnEverywhereStaysSafeAndCompletes) {
  const std::uint64_t seed = GetParam();
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.back_threshold_increment = 3;
  config.local_trace_duration = 25;          // §6.2 non-atomic traces
  config.back_call_timeout = 600;            // §4.6 timeouts
  config.report_timeout = 5000;              // §4.6 outcome expiry
  config.update_refresh_period = 3;          // loss recovery
  config.short_circuit_live_replies = true;  // §4.4 early Live
  config.insert_mode = InsertMode::kDeferred;
  NetworkConfig net;
  net.latency = 10;
  net.latency_jitter = 12;
  net.drop_probability = 0.02;
  net.batch_window = 6;  // §4.6 piggybacking
  System system(5, config, net, seed);

  // Static garbage to find: two rings, one of them large.
  const auto small_ring = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  const auto big_ring = workload::BuildCycle(
      system, {.sites = 5, .objects_per_site = 2, .first_site = 0});

  // Plus live churn on top.
  workload::ChurnDriver driver(system, Rng(seed * 48271));
  workload::ChurnSpec spec;
  spec.steps = 30;
  spec.rounds_every = 4;
  spec.check_safety_each_step = true;
  driver.Run(spec);

  // Crash-restart a site mid-flight, with its network down for a while.
  system.network().SetSiteDown(3, true);
  system.RunRounds(4);
  system.network().SetSiteDown(3, false);
  system.site(3).CrashRestart();
  system.SettleNetwork();
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();

  // More churn after recovery.
  driver.Run(spec);

  // Quiesce fully.
  EXPECT_NO_THROW(driver.Quiesce(120));
  for (const ObjectId id : small_ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << "seed " << seed << " " << id;
  }
  for (const ObjectId id : big_ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << "seed " << seed << " " << id;
  }
  EXPECT_TRUE(system.CheckSafety().empty())
      << "seed " << seed << ": " << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << "seed " << seed << ": " << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << "seed " << seed << ": " << system.CheckReferentialIntegrity();
  EXPECT_TRUE(system.CheckLocalSafetyInvariant().empty())
      << "seed " << seed << ": " << system.CheckLocalSafetyInvariant();
  // Piggybacking engaged.
  EXPECT_LT(system.network().stats().wire_messages,
            system.network().stats().inter_site_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KitchenSink,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace dgc
