// Process-mode tests: real site processes over Unix-domain sockets.
//
// The suite covers the three pillars of the socket transport:
//   * determinism — a seeded scripted churn produces the SAME object ids,
//     survivors, and reclaim totals under the in-process simulator and
//     under real processes (10-seed differential);
//   * crash recovery — kill -9 mid-trace, the supervisor restarts the
//     process, the replacement restores its snapshot, dials back in at
//     incarnation + 1, and every severed garbage cycle is still collected;
//   * graceful degradation — a SIGSTOP'd site only times out its own
//     steps (the coordinator keeps the rest of the world moving), and a
//     severed socket reconnects at the same incarnation with no fencing.
//
// Everything here forks real processes, so this binary carries the
// `socket` ctest label: the TSan leg of check_sanitize.sh excludes it
// (TSan's runtime does not survive fork-without-exec children).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/ids.h"
#include "core/system.h"
#include "net/socket_world.h"
#include "net/supervisor.h"
#include "sim/fault_plan.h"
#include "workload/scripted.h"

namespace dgc {
namespace {

constexpr std::size_t kSites = 4;

CollectorConfig TestCollector() {
  CollectorConfig config;
  return config;
}

NetworkConfig FastSocketNet() {
  NetworkConfig net;
  // Keep real-time waits short so chaos tests run in seconds: a paused
  // site is declared unresponsive after 1s, restarts retry quickly.
  net.socket.step_timeout_ms = 1000;
  net.socket.settle_grace_ms = 5000;
  net.socket.restart_backoff_initial_ms = 20;
  net.socket.restart_backoff_max_ms = 200;
  return net;
}

SocketWorldOptions TestOptions(std::uint64_t seed) {
  SocketWorldOptions options;
  options.site_count = kSites;
  options.collector = TestCollector();
  options.network = FastSocketNet();
  options.seed = seed;
  return options;
}

ScriptedChurnSpec SmallSpec() {
  ScriptedChurnSpec spec;
  spec.rounds = 3;
  spec.rings_per_round = 2;
  spec.ring_span = 3;
  spec.locals_per_round = 2;
  spec.cut_probability = 0.5;
  spec.drain_rounds = 8;
  return spec;
}

/// Builds one cross-site ring by hand (span sites starting at `start`),
/// tethered to a persistent root on `start`. Returns the ring objects;
/// `tether` receives the root.
std::vector<ObjectId> BuildRing(SocketWorld& world, SiteId start,
                                std::size_t span, ObjectId& tether) {
  std::vector<ObjectId> ring;
  for (std::size_t k = 0; k < span; ++k) {
    ring.push_back(world.NewObject((start + k) % kSites, 2));
  }
  for (std::size_t k = 0; k < span; ++k) {
    world.Wire(ring[k], 0, ring[(k + 1) % span]);
  }
  tether = world.NewObject(start, 2);
  world.SetPersistentRoot(tether);
  world.Wire(tether, 0, ring.front());
  return ring;
}

TEST(SocketWorld, LifecycleAndBasicCollection) {
  SocketWorld world(TestOptions(/*seed=*/1));
  const SocketCounters& counters = world.transport().socket_counters();
  EXPECT_EQ(counters.handshakes_accepted, kSites);
  for (SiteId s = 0; s < kSites; ++s) {
    EXPECT_TRUE(world.transport().connected(s));
    EXPECT_EQ(world.incarnation(s), 0u);
  }

  ObjectId tether;
  const std::vector<ObjectId> ring = BuildRing(world, 0, 3, tether);
  world.RunRounds(2);
  for (ObjectId obj : ring) {
    EXPECT_TRUE(world.ObjectExists(obj)) << "tethered ring member collected";
  }

  world.Unwire(tether, 0);
  world.RunRounds(8);
  for (ObjectId obj : ring) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle survived";
  }
  EXPECT_TRUE(world.ObjectExists(tether));  // still a persistent root
  EXPECT_GE(world.TotalObjectsReclaimed(), ring.size());
}

// The acceptance differential: identical op streams through the simulator
// and through real processes must agree on every object id minted, every
// survivor, and the reclaim totals.
TEST(SocketWorld, SimDifferentialTenSeeds) {
  const ScriptedChurnSpec spec = SmallSpec();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    System system(kSites, TestCollector(), NetworkConfig{}, seed);
    SystemGodWorld sim_world(system);
    const ScriptedChurnResult sim = RunScriptedChurn(sim_world, seed, spec);

    SocketWorld socket(TestOptions(seed));
    SocketGodWorld proc_world(socket);
    const ScriptedChurnResult proc = RunScriptedChurn(proc_world, seed, spec);

    // Object identity: both worlds must mint the same ids for the same ops.
    ASSERT_EQ(sim.rings.size(), proc.rings.size());
    ASSERT_EQ(sim.locals, proc.locals);
    ASSERT_EQ(sim.cuts, proc.cuts);
    for (std::size_t i = 0; i < sim.rings.size(); ++i) {
      ASSERT_EQ(sim.rings[i].objects, proc.rings[i].objects);
      ASSERT_EQ(sim.rings[i].tether, proc.rings[i].tether);
      ASSERT_EQ(sim.rings[i].cut, proc.rings[i].cut);
    }

    // Verdicts: every object's fate matches, object by object.
    for (const ScriptedRing& ring : sim.rings) {
      for (ObjectId obj : ring.objects) {
        EXPECT_EQ(system.ObjectExists(obj), socket.ObjectExists(obj))
            << "ring object " << obj.site << ":" << obj.index;
      }
      EXPECT_EQ(system.ObjectExists(ring.tether),
                socket.ObjectExists(ring.tether));
    }
    for (ObjectId obj : sim.locals) {
      EXPECT_EQ(system.ObjectExists(obj), socket.ObjectExists(obj));
    }

    // Totals: same live census, same reclaim count.
    EXPECT_EQ(system.TotalObjects(), socket.TotalObjects());
    EXPECT_EQ(system.TotalObjectsReclaimed(), socket.TotalObjectsReclaimed());

    // All cut rings must actually be garbage by now in both worlds.
    for (const ScriptedRing& ring : sim.rings) {
      ASSERT_TRUE(ring.cut);
      for (ObjectId obj : ring.objects) {
        EXPECT_FALSE(system.ObjectExists(obj));
        EXPECT_FALSE(socket.ObjectExists(obj));
      }
    }
  }
}

// Socket column of the composition matrix (transport_test.cc carries the
// TSan-able sim/threaded columns): mark_threads-way shard marking inside
// each site PROCESS — every site owns a private worker pool in its own
// address space — composed with incremental trace/distance maintenance
// must reproduce the simulator bit for bit: same minted ids, same
// per-object verdicts, same census and reclaim totals.
TEST(SocketWorld, MarkThreadsAndIncrementalMatchSimTenSeeds) {
  const ScriptedChurnSpec spec = SmallSpec();
  CollectorConfig collector = TestCollector();
  collector.mark_threads = 8;
  collector.incremental_trace = true;
  collector.incremental_distance = true;
  std::uint64_t parallel_replays = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    System system(kSites, collector, NetworkConfig{}, seed);
    SystemGodWorld sim_world(system);
    const ScriptedChurnResult sim = RunScriptedChurn(sim_world, seed, spec);

    SocketWorldOptions options = TestOptions(seed);
    options.collector = collector;
    SocketWorld socket(options);
    SocketGodWorld proc_world(socket);
    const ScriptedChurnResult proc = RunScriptedChurn(proc_world, seed, spec);

    ASSERT_EQ(sim.rings.size(), proc.rings.size());
    ASSERT_EQ(sim.locals, proc.locals);
    ASSERT_EQ(sim.cuts, proc.cuts);
    for (std::size_t i = 0; i < sim.rings.size(); ++i) {
      ASSERT_EQ(sim.rings[i].objects, proc.rings[i].objects);
      ASSERT_EQ(sim.rings[i].tether, proc.rings[i].tether);
      ASSERT_EQ(sim.rings[i].cut, proc.rings[i].cut);
    }
    for (const ScriptedRing& ring : sim.rings) {
      for (ObjectId obj : ring.objects) {
        EXPECT_EQ(system.ObjectExists(obj), socket.ObjectExists(obj))
            << "ring object " << obj.site << ":" << obj.index;
      }
      EXPECT_EQ(system.ObjectExists(ring.tether),
                socket.ObjectExists(ring.tether));
    }
    for (ObjectId obj : sim.locals) {
      EXPECT_EQ(system.ObjectExists(obj), socket.ObjectExists(obj));
    }
    EXPECT_EQ(system.TotalObjects(), socket.TotalObjects());
    EXPECT_EQ(system.TotalObjectsReclaimed(), socket.TotalObjectsReclaimed());
    parallel_replays += socket.transport().counters().parallel_replays;
  }
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_GT(parallel_replays, 0u)
        << "sharded replay never engaged across ten seeded runs";
  }
}

// The pipelined step loop is a pure latency optimization: disabling it
// (socket.pipelined_steps = false restores the serial one-site-at-a-time
// collection) must change nothing observable on a seeded run.
TEST(SocketWorld, PipelinedStepLoopMatchesSerialLoop) {
  const ScriptedChurnSpec spec = SmallSpec();
  for (const std::uint64_t seed : {3u, 8u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    SocketWorld pipelined(TestOptions(seed));
    SocketGodWorld pipelined_world(pipelined);
    const ScriptedChurnResult a = RunScriptedChurn(pipelined_world, seed, spec);

    SocketWorldOptions serial_options = TestOptions(seed);
    serial_options.network.socket.pipelined_steps = false;
    SocketWorld serial(serial_options);
    SocketGodWorld serial_world(serial);
    const ScriptedChurnResult b = RunScriptedChurn(serial_world, seed, spec);

    ASSERT_EQ(a.rings.size(), b.rings.size());
    ASSERT_EQ(a.locals, b.locals);
    ASSERT_EQ(a.cuts, b.cuts);
    for (std::size_t i = 0; i < a.rings.size(); ++i) {
      ASSERT_EQ(a.rings[i].objects, b.rings[i].objects);
      ASSERT_EQ(a.rings[i].cut, b.rings[i].cut);
    }
    for (const ScriptedRing& ring : a.rings) {
      for (ObjectId obj : ring.objects) {
        EXPECT_EQ(pipelined.ObjectExists(obj), serial.ObjectExists(obj));
      }
    }
    EXPECT_EQ(pipelined.TotalObjects(), serial.TotalObjects());
    EXPECT_EQ(pipelined.TotalObjectsReclaimed(),
              serial.TotalObjectsReclaimed());
  }
}

// Chaos against the pipelined wave itself: one site SIGSTOPped (its slot
// expires at the shared deadline while the rest of the wave completes) and
// another kill -9'd with a StepRequest in flight (EOF mid-wave →
// disconnect → supervised restart at incarnation + 1). The world must keep
// stepping, absorb the late reply on resume, and still collect every
// severed cycle.
TEST(SocketWorld, PipelinedWaveSurvivesStopAndKillChaos) {
  SocketWorldOptions options = TestOptions(/*seed=*/19);
  options.network.socket.step_timeout_ms = 200;
  // Settle would otherwise wait its full grace for the paused site's owed
  // reply after every build op; the pause here is held across whole rounds,
  // so keep the per-settle patience short (still >> the restart backoff).
  options.network.socket.settle_grace_ms = 400;
  SocketWorld world(options);

  ObjectId tether0;
  ObjectId tether1;
  const std::vector<ObjectId> ring0 = BuildRing(world, 0, 3, tether0);
  const std::vector<ObjectId> ring1 = BuildRing(world, 1, 4, tether1);
  world.RunRounds(2);
  world.Unwire(tether0, 0);
  world.Unwire(tether1, 0);

  world.PauseSite(3);  // every wave now carries a dark site
  FaultPlan plan;
  plan.KillProcess(world.control_scheduler().now() + 1, /*site=*/1);
  world.ArmFaultPlan(plan);

  world.RunRounds(4);  // waves with one paused and one dying site in flight
  const SocketCounters& counters = world.transport().socket_counters();
  EXPECT_GE(counters.step_timeouts, 1u) << "pause never hit a wave deadline";

  world.ResumeSite(3);
  world.SettleNetwork();  // absorbs the owed late reply + supervised restart
  EXPECT_TRUE(world.transport().responsive(3));
  EXPECT_GE(world.supervisor().counters().restarts, 1u);
  EXPECT_GE(world.incarnation(1), 1u);

  world.RunRounds(10);
  for (ObjectId obj : ring0) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
  for (ObjectId obj : ring1) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
  EXPECT_TRUE(world.ObjectExists(tether0));
  EXPECT_TRUE(world.ObjectExists(tether1));
}

// --- Supervisor backoff reset ----------------------------------------------

// A site whose every incarnation lives past the healthy-uptime window must
// never march toward give-up: each death is a fresh incident, restarted
// with the initial backoff and a fresh budget.
TEST(SupervisorTest, HealthyUptimeResetsTheRestartBudget) {
  Supervisor::Options opts;
  opts.backoff_initial_ms = 10;
  opts.backoff_max_ms = 500;
  opts.max_restarts = 2;
  opts.healthy_uptime_reset_ms = 50;
  Supervisor sup(opts);
  Supervisor::SiteSpec spec;
  spec.run = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    return 1;  // healthy life (80ms >= 50ms window), then an unexpected exit
  };
  const SiteId site = sup.AddSite(std::move(spec));
  sup.Start(site);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         sup.status(site).restarts < opts.max_restarts + 2) {
    sup.Poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sup.status(site).restarts, opts.max_restarts + 2)
      << "healthy uptime did not reset the give-up budget";
  EXPECT_FALSE(sup.status(site).gave_up);
  sup.Terminate(site);
}

// A genuine crash loop — every life shorter than the window — still
// exhausts the budget exactly as before the reset knob existed.
TEST(SupervisorTest, CrashLoopStillExhaustsBudgetDespiteHealthyWindow) {
  Supervisor::Options opts;
  opts.backoff_initial_ms = 10;
  opts.backoff_max_ms = 100;
  opts.max_restarts = 2;
  opts.healthy_uptime_reset_ms = 50;
  Supervisor sup(opts);
  Supervisor::SiteSpec spec;
  spec.run = [] { return 1; };  // dies instantly: never healthy
  const SiteId site = sup.AddSite(std::move(spec));
  sup.Start(site);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         !sup.status(site).gave_up) {
    sup.Poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(sup.status(site).gave_up);
  EXPECT_EQ(sup.status(site).restarts, opts.max_restarts);
  EXPECT_EQ(sup.counters().gave_up, 1u);
  EXPECT_FALSE(sup.status(site).restart_pending);
}

// kill -9 a site that hosts members of severed cycles, mid-trace. The
// supervisor must restart it, the replacement must come back at
// incarnation + 1 (snapshot + handshake fencing), and every severed cycle
// must still be collected in bounded rounds.
TEST(SocketWorld, KillNineMidTraceRecoversAndCollects) {
  SocketWorld world(TestOptions(/*seed=*/7));

  ObjectId tether0;
  ObjectId tether1;
  const std::vector<ObjectId> ring0 = BuildRing(world, 0, 3, tether0);
  const std::vector<ObjectId> ring1 = BuildRing(world, 1, 4, tether1);
  world.RunRounds(2);  // let registrations and distances settle

  world.Unwire(tether0, 0);
  world.Unwire(tether1, 0);

  // Kill site 1 (a member of both rings) shortly after traces start.
  FaultPlan plan;
  plan.KillProcess(world.control_scheduler().now() + 1, /*site=*/1);
  world.ArmFaultPlan(plan);

  world.RunRounds(10);
  world.SettleNetwork();

  const Supervisor::Counters& sup = world.supervisor().counters();
  EXPECT_GE(sup.kills, 1u);
  EXPECT_GE(sup.restarts, 1u);
  EXPECT_GE(world.incarnation(1), 1u) << "restart handshake did not fence";
  EXPECT_GE(world.transport().socket_counters().restarts_accepted, 1u);
  EXPECT_TRUE(world.transport().connected(1));

  for (ObjectId obj : ring0) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
  for (ObjectId obj : ring1) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
  EXPECT_TRUE(world.ObjectExists(tether0));
  EXPECT_TRUE(world.ObjectExists(tether1));
}

// SIGSTOP freezes one site; the coordinator must degrade gracefully (step
// timeouts, not a stall), absorb the late reply after SIGCONT, and finish
// collecting once the site is back. The pause is held across REAL time
// (sim-time pauses elapse in microseconds and never straddle a step), so
// this test shortens the step timeout and stops the process directly.
TEST(SocketWorld, PauseResumeDegradesGracefully) {
  SocketWorldOptions options = TestOptions(/*seed=*/11);
  options.network.socket.step_timeout_ms = 200;
  SocketWorld world(options);

  ObjectId tether;
  const std::vector<ObjectId> ring = BuildRing(world, 0, 3, tether);
  world.RunRounds(2);
  world.Unwire(tether, 0);

  world.PauseSite(2);
  // The paused site times its step out; the round must still complete for
  // everyone else instead of stalling the world.
  world.RunRounds(2);
  const SocketCounters& counters = world.transport().socket_counters();
  EXPECT_GE(counters.step_timeouts, 1u) << "pause was never observed";
  EXPECT_FALSE(world.transport().responsive(2));
  EXPECT_TRUE(world.transport().connected(2)) << "pause is not a crash";

  world.ResumeSite(2);
  world.SettleNetwork();  // absorbs the owed late reply
  EXPECT_TRUE(world.transport().responsive(2));
  EXPECT_GE(counters.late_replies, 1u) << "owed reply was not absorbed";
  EXPECT_EQ(world.incarnation(2), 0u) << "pause must not look like a crash";
  EXPECT_GE(world.supervisor().counters().pauses, 1u);
  EXPECT_GE(world.supervisor().counters().resumes, 1u);

  world.RunRounds(8);
  for (ObjectId obj : ring) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
}

// Severing the socket under a healthy process: the site redials and is
// accepted at the SAME incarnation — no fencing, no restart.
TEST(SocketWorld, SeveredSocketReconnectsSameIncarnation) {
  SocketWorld world(TestOptions(/*seed=*/13));

  ObjectId tether;
  const std::vector<ObjectId> ring = BuildRing(world, 0, 3, tether);
  world.RunRounds(2);
  world.Unwire(tether, 0);

  FaultPlan plan;
  plan.SeverSocket(world.control_scheduler().now() + 1, /*site=*/0);
  world.ArmFaultPlan(plan);

  world.RunRounds(8);
  world.SettleNetwork();

  const SocketCounters& counters = world.transport().socket_counters();
  EXPECT_GE(counters.severed, 1u);
  EXPECT_GE(counters.reconnects, 1u) << "surviving process did not redial";
  EXPECT_EQ(world.incarnation(0), 0u)
      << "same-process reconnect must not bump the incarnation";
  EXPECT_EQ(world.supervisor().counters().restarts, 0u);
  EXPECT_TRUE(world.transport().connected(0));

  for (ObjectId obj : ring) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
}

// Direct kill (no fault plan) while idle: the restart path alone — snapshot
// restore, incarnation bump, resync step — must leave the census intact.
TEST(SocketWorld, RestartPreservesCensusViaSnapshot) {
  SocketWorld world(TestOptions(/*seed=*/17));

  ObjectId tether;
  const std::vector<ObjectId> ring = BuildRing(world, 2, 3, tether);
  world.RunRounds(2);
  const std::uint64_t live_before = world.TotalObjects();

  world.KillSite(2);
  world.SettleNetwork();  // waits out the supervised restart + handshake

  EXPECT_GE(world.incarnation(2), 1u);
  EXPECT_TRUE(world.transport().connected(2));
  EXPECT_EQ(world.TotalObjects(), live_before)
      << "snapshot restore lost or duplicated objects";
  for (ObjectId obj : ring) {
    EXPECT_TRUE(world.ObjectExists(obj));
  }

  // And the restored site still participates in collection.
  world.Unwire(tether, 0);
  world.RunRounds(8);
  for (ObjectId obj : ring) {
    EXPECT_FALSE(world.ObjectExists(obj)) << "severed cycle leaked";
  }
}

}  // namespace
}  // namespace dgc
