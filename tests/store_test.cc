// Unit tests for the per-site object store.
#include <gtest/gtest.h>

#include "common/check.h"
#include "store/heap.h"

namespace dgc {
namespace {

TEST(HeapTest, AllocateAssignsOwnedIds) {
  Heap heap(3);
  const ObjectId a = heap.Allocate(2);
  const ObjectId b = heap.Allocate(0);
  EXPECT_EQ(a.site, 3u);
  EXPECT_EQ(b.site, 3u);
  EXPECT_NE(a, b);
  EXPECT_TRUE(heap.Exists(a));
  EXPECT_EQ(heap.object_count(), 2u);
  EXPECT_EQ(heap.stats().allocated, 2u);
}

TEST(HeapTest, SlotsStartNull) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(heap.GetSlot(a, i), kInvalidObject);
  }
}

TEST(HeapTest, SetAndGetSlot) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(2);
  const ObjectId b = heap.Allocate(0);
  heap.SetSlot(a, 1, b);
  EXPECT_EQ(heap.GetSlot(a, 1), b);
  heap.SetSlot(a, 1, kInvalidObject);
  EXPECT_EQ(heap.GetSlot(a, 1), kInvalidObject);
}

TEST(HeapTest, OutOfRangeSlotThrows) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(1);
  EXPECT_THROW(heap.SetSlot(a, 1, kInvalidObject), InvariantViolation);
  EXPECT_THROW((void)heap.GetSlot(a, 5), InvariantViolation);
}

TEST(HeapTest, FreeReclaims) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.Free(a);
  EXPECT_FALSE(heap.Exists(a));
  EXPECT_EQ(heap.stats().reclaimed, 1u);
  EXPECT_THROW(heap.Free(a), InvariantViolation);
}

TEST(HeapTest, IdsNotReusedAfterFree) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.Free(a);
  const ObjectId b = heap.Allocate(0);
  EXPECT_NE(a, b);
}

TEST(HeapTest, ForeignIdDoesNotExist) {
  Heap heap(1);
  Heap other(2);
  const ObjectId foreign = other.Allocate(0);
  EXPECT_FALSE(heap.Exists(foreign));
  EXPECT_THROW(heap.Get(foreign), InvariantViolation);
}

TEST(HeapTest, PersistentRoots) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  const ObjectId b = heap.Allocate(0);
  heap.AddPersistentRoot(a);
  heap.AddPersistentRoot(b);
  EXPECT_EQ(heap.persistent_roots().size(), 2u);
  heap.RemovePersistentRoot(a);
  ASSERT_EQ(heap.persistent_roots().size(), 1u);
  EXPECT_EQ(heap.persistent_roots()[0], b);
}

TEST(HeapTest, CannotFreeAPersistentRoot) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.AddPersistentRoot(a);
  EXPECT_THROW(heap.Free(a), InvariantViolation);
  heap.RemovePersistentRoot(a);
  EXPECT_NO_THROW(heap.Free(a));
}

TEST(HeapTest, DuplicateRootRejected) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.AddPersistentRoot(a);
  EXPECT_THROW(heap.AddPersistentRoot(a), InvariantViolation);
}

TEST(HeapTest, ForEachVisitsAllObjects) {
  Heap heap(0);
  std::set<ObjectId> allocated;
  for (int i = 0; i < 20; ++i) allocated.insert(heap.Allocate(1));
  std::set<ObjectId> seen;
  heap.ForEach([&](ObjectId id, const Object&) { seen.insert(id); });
  EXPECT_EQ(seen, allocated);
}

TEST(HeapTest, MarkEpochsDefaultToZero) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  EXPECT_EQ(heap.Get(a).mark_epoch, 0u);
  EXPECT_EQ(heap.Get(a).clean_epoch, 0u);
}

}  // namespace
}  // namespace dgc
