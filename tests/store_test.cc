// Unit tests for the per-site object store.
#include <gtest/gtest.h>

#include "common/check.h"
#include "store/heap.h"

namespace dgc {
namespace {

TEST(HeapTest, AllocateAssignsOwnedIds) {
  Heap heap(3);
  const ObjectId a = heap.Allocate(2);
  const ObjectId b = heap.Allocate(0);
  EXPECT_EQ(a.site, 3u);
  EXPECT_EQ(b.site, 3u);
  EXPECT_NE(a, b);
  EXPECT_TRUE(heap.Exists(a));
  EXPECT_EQ(heap.object_count(), 2u);
  EXPECT_EQ(heap.stats().allocated, 2u);
}

TEST(HeapTest, SlotsStartNull) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(heap.GetSlot(a, i), kInvalidObject);
  }
}

TEST(HeapTest, SetAndGetSlot) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(2);
  const ObjectId b = heap.Allocate(0);
  heap.SetSlot(a, 1, b);
  EXPECT_EQ(heap.GetSlot(a, 1), b);
  heap.SetSlot(a, 1, kInvalidObject);
  EXPECT_EQ(heap.GetSlot(a, 1), kInvalidObject);
}

TEST(HeapTest, OutOfRangeSlotThrows) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(1);
  EXPECT_THROW(heap.SetSlot(a, 1, kInvalidObject), InvariantViolation);
  EXPECT_THROW((void)heap.GetSlot(a, 5), InvariantViolation);
}

TEST(HeapTest, FreeReclaims) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.Free(a);
  EXPECT_FALSE(heap.Exists(a));
  EXPECT_EQ(heap.stats().reclaimed, 1u);
  EXPECT_THROW(heap.Free(a), InvariantViolation);
}

TEST(HeapTest, IdsNotReusedAfterFree) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.Free(a);
  const ObjectId b = heap.Allocate(0);
  EXPECT_NE(a, b);
}

TEST(HeapTest, ForeignIdDoesNotExist) {
  Heap heap(1);
  Heap other(2);
  const ObjectId foreign = other.Allocate(0);
  EXPECT_FALSE(heap.Exists(foreign));
  EXPECT_THROW(heap.Get(foreign), InvariantViolation);
}

TEST(HeapTest, PersistentRoots) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  const ObjectId b = heap.Allocate(0);
  heap.AddPersistentRoot(a);
  heap.AddPersistentRoot(b);
  EXPECT_EQ(heap.persistent_roots().size(), 2u);
  heap.RemovePersistentRoot(a);
  ASSERT_EQ(heap.persistent_roots().size(), 1u);
  EXPECT_EQ(heap.persistent_roots()[0], b);
}

TEST(HeapTest, CannotFreeAPersistentRoot) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.AddPersistentRoot(a);
  EXPECT_THROW(heap.Free(a), InvariantViolation);
  heap.RemovePersistentRoot(a);
  EXPECT_NO_THROW(heap.Free(a));
}

TEST(HeapTest, DuplicateRootRejected) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.AddPersistentRoot(a);
  EXPECT_THROW(heap.AddPersistentRoot(a), InvariantViolation);
}

TEST(HeapTest, ForEachVisitsAllObjects) {
  Heap heap(0);
  std::set<ObjectId> allocated;
  for (int i = 0; i < 20; ++i) allocated.insert(heap.Allocate(1));
  std::set<ObjectId> seen;
  heap.ForEach([&](ObjectId id, const Object&) { seen.insert(id); });
  EXPECT_EQ(seen, allocated);
}

TEST(HeapTest, MarkEpochsDefaultToZero) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  EXPECT_EQ(heap.mark_epoch(a), 0u);
  EXPECT_EQ(heap.clean_epoch(a), 0u);
}

// --- Slab / free-list behaviour -------------------------------------------

TEST(SlabHeapTest, FreeRecyclesStorageSlotUnderFreshId) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(1);
  const ObjectId b = heap.Allocate(1);
  const std::size_t capacity = heap.slot_capacity();
  heap.Free(a);
  EXPECT_EQ(heap.free_slot_count(), 1u);
  const ObjectId c = heap.Allocate(2);
  // The storage slot is recycled (no capacity growth, free list drained)...
  EXPECT_EQ(heap.slot_capacity(), capacity);
  EXPECT_EQ(heap.free_slot_count(), 0u);
  // ...but the id is fresh: the stale id stays dead forever.
  EXPECT_NE(c, a);
  EXPECT_FALSE(heap.Exists(a));
  EXPECT_TRUE(heap.Exists(c));
  EXPECT_TRUE(heap.Exists(b));
  EXPECT_EQ(heap.Get(c).slots.size(), 2u);
  EXPECT_THROW(heap.Get(a), InvariantViolation);
}

TEST(SlabHeapTest, RepeatedReuseKeepsIdsDistinct) {
  Heap heap(0);
  std::set<ObjectId> ids;
  ObjectId current = heap.Allocate(0);
  ids.insert(current);
  for (int i = 0; i < 100; ++i) {
    heap.Free(current);
    current = heap.Allocate(0);
    EXPECT_TRUE(ids.insert(current).second) << "id reused after " << i;
  }
  EXPECT_EQ(heap.slot_capacity(), 1u);  // one slot served all 101 ids
}

TEST(SlabHeapTest, ForEachVisitsStorageOrderAfterFrees) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  const ObjectId b = heap.Allocate(0);
  const ObjectId c = heap.Allocate(0);
  heap.Free(b);
  const ObjectId d = heap.Allocate(0);  // recycles b's slot
  const ObjectId e = heap.Allocate(0);  // fresh slot after c
  std::vector<ObjectId> order;
  heap.ForEach([&](ObjectId id, const Object&) { order.push_back(id); });
  // A recycled slot keeps its storage position: d sits where b was.
  EXPECT_EQ(order, (std::vector<ObjectId>{a, d, c, e}));
}

TEST(SlabHeapTest, EpochSideArraysResetWhenSlotRecycled) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(0);
  heap.set_mark_epoch(a, 7);
  heap.set_clean_epoch(a, 7);
  EXPECT_EQ(heap.mark_epoch(a), 7u);
  heap.Free(a);
  const ObjectId b = heap.Allocate(0);  // same slot, fresh generation
  EXPECT_EQ(heap.mark_epoch(b), 0u);
  EXPECT_EQ(heap.clean_epoch(b), 0u);
}

TEST(SlabHeapTest, ObjectPointersStableAcrossSlabGrowth) {
  Heap heap(0);
  const ObjectId first = heap.Allocate(1);
  const Object* address = &heap.Get(first);
  // Force several slab allocations past the first.
  for (std::size_t i = 0; i < 3 * Heap::kSlabSize; ++i) heap.Allocate(0);
  EXPECT_GE(heap.slab_count(), 3u);
  EXPECT_EQ(&heap.Get(first), address);
}

TEST(SlabHeapTest, OccupancyTracksLiveOverCapacity) {
  Heap heap(0);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(heap.Allocate(0));
  EXPECT_DOUBLE_EQ(heap.occupancy(), 1.0);
  for (int i = 0; i < 4; ++i) heap.Free(ids[i]);
  EXPECT_DOUBLE_EQ(heap.occupancy(), 0.5);
  EXPECT_EQ(heap.object_count(), 4u);
  EXPECT_EQ(heap.slot_capacity(), 8u);
  EXPECT_EQ(heap.free_slot_count(), 4u);
}

TEST(SlabHeapTest, GetCellExposesEpochCells) {
  Heap heap(0);
  const ObjectId a = heap.Allocate(1);
  const Heap::Cell cell = heap.GetCell(a);
  *cell.mark_epoch = 3;
  *cell.clean_epoch = 2;
  EXPECT_EQ(heap.mark_epoch(a), 3u);
  EXPECT_EQ(heap.clean_epoch(a), 2u);
  cell.object->slots[0] = a;
  EXPECT_EQ(heap.GetSlot(a, 0), a);
}

}  // namespace
}  // namespace dgc
