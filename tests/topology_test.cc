// Exotic garbage topologies: shapes that stress the back tracer's branching,
// visited-set, and inset machinery beyond simple rings — figure-eights,
// nested rings, cycles of cycles, dense bipartite tangles, deep local SCCs
// with several inter-site exits. Every one must be fully reclaimed, safely.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config(Distance cycle_estimate = 8) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = cycle_estimate;
  config.back_threshold_increment = 2;
  return config;
}

void ExpectAllCollected(System& system, const std::vector<ObjectId>& objects,
                        int rounds = 40) {
  system.RunRounds(rounds);
  for (const ObjectId id : objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

TEST(TopologyTest, FigureEightSharingOneObject) {
  // Two inter-site rings sharing a single hub object: one trace must close
  // over both lobes via the hub's two-way inset.
  System system(3, Config());
  const ObjectId hub = system.NewObject(0, 2);
  const ObjectId left = system.NewObject(1, 1);
  const ObjectId right = system.NewObject(2, 1);
  system.Wire(hub, 0, left);
  system.Wire(left, 0, hub);
  system.Wire(hub, 1, right);
  system.Wire(right, 0, hub);
  ExpectAllCollected(system, {hub, left, right});
}

TEST(TopologyTest, NestedRingsSharingAllSites) {
  // An inner 2-site ring and an outer 4-site ring over the same sites, with
  // a chord from outer to inner: distinct cycles, overlapping iorefs.
  System system(4, Config());
  const auto inner =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const auto outer =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 1});
  system.Wire(outer.objects[1], 1, inner.objects[0]);
  std::vector<ObjectId> all = inner.objects;
  all.insert(all.end(), outer.objects.begin(), outer.objects.end());
  ExpectAllCollected(system, all);
}

TEST(TopologyTest, CycleOfCycles) {
  // Three 2-site rings, each ring's member pointing into the next ring,
  // closing a super-cycle of rings across 6 sites.
  System system(6, Config(12));
  std::vector<workload::CycleHandles> rings;
  for (SiteId s = 0; s < 6; s += 2) {
    rings.push_back(workload::BuildCycle(
        system, {.sites = 2, .objects_per_site = 1, .first_site = s}));
  }
  std::vector<ObjectId> all;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    system.Wire(rings[i].objects[1], 1,
                rings[(i + 1) % rings.size()].objects[0]);
    all.insert(all.end(), rings[i].objects.begin(), rings[i].objects.end());
  }
  ExpectAllCollected(system, all, 60);
}

TEST(TopologyTest, DenseBipartiteTangle) {
  // Every object on site 0 references every object on site 1 and vice
  // versa: maximal inset sizes and branch fan-out.
  System system(2, Config());
  constexpr std::size_t kPerSite = 4;
  std::vector<ObjectId> a, b;
  for (std::size_t i = 0; i < kPerSite; ++i) {
    a.push_back(system.NewObject(0, kPerSite));
    b.push_back(system.NewObject(1, kPerSite));
  }
  for (std::size_t i = 0; i < kPerSite; ++i) {
    for (std::size_t j = 0; j < kPerSite; ++j) {
      system.Wire(a[i], j, b[j]);
      system.Wire(b[i], j, a[j]);
    }
  }
  std::vector<ObjectId> all = a;
  all.insert(all.end(), b.begin(), b.end());
  ExpectAllCollected(system, all);
}

TEST(TopologyTest, DeepLocalSccWithSeveralExits) {
  // A 50-object local SCC on site 0 whose members hold refs into a 3-site
  // garbage ring: the SCC shares one outset; the whole structure dies.
  System system(4, Config());
  const auto ring = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 1, .first_site = 1});
  std::vector<ObjectId> scc;
  for (int i = 0; i < 50; ++i) scc.push_back(system.NewObject(0, 2));
  for (int i = 0; i < 50; ++i) {
    system.Wire(scc[i], 0, scc[(i + 1) % 50]);
    if (i % 10 == 0) system.Wire(scc[i], 1, ring.objects[i / 10 % 3]);
  }
  // And the ring points back into the SCC, making one giant garbage knot.
  system.Wire(ring.objects[0], 1, scc[0]);
  std::vector<ObjectId> all = scc;
  all.insert(all.end(), ring.objects.begin(), ring.objects.end());
  ExpectAllCollected(system, all, 60);
}

TEST(TopologyTest, LongChainFeedingCycleDiesAfterCycle) {
  // chain (garbage) -> cycle: back traces walking backwards from the cycle
  // visit the chain's inrefs too; everything is reclaimed.
  System system(4, Config());
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  // Build a 6-hop garbage chain whose tail points INTO the cycle.
  std::vector<ObjectId> chain;
  ObjectId previous = kInvalidObject;
  for (int i = 0; i < 6; ++i) {
    const ObjectId link = system.NewObject((2 + i) % 4, 1);
    if (previous.valid()) system.Wire(previous, 0, link);
    chain.push_back(link);
    previous = link;
  }
  system.Wire(previous, 0, cycle.objects[0]);
  std::vector<ObjectId> all = chain;
  all.insert(all.end(), cycle.objects.begin(), cycle.objects.end());
  ExpectAllCollected(system, all, 60);
}

TEST(TopologyTest, TwoSitesManyParallelEdges) {
  // The same pair of sites connected by many parallel object pairs; a trace
  // on one pair must not disturb the others (distinct iorefs per object).
  System system(2, Config());
  std::vector<ObjectId> all;
  for (int k = 0; k < 10; ++k) {
    const ObjectId x = system.NewObject(0, 1);
    const ObjectId y = system.NewObject(1, 1);
    system.Wire(x, 0, y);
    system.Wire(y, 0, x);
    all.push_back(x);
    all.push_back(y);
  }
  // Half of them are live (tethered); only the garbage half may die.
  std::vector<ObjectId> garbage;
  for (int k = 0; k < 10; ++k) {
    if (k % 2 == 0) {
      workload::TetherToRoot(system, all[2 * k], 0);
    } else {
      garbage.push_back(all[2 * k]);
      garbage.push_back(all[2 * k + 1]);
    }
  }
  system.RunRounds(40);
  for (const ObjectId id : garbage) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  for (int k = 0; k < 10; k += 2) {
    EXPECT_TRUE(system.ObjectExists(all[2 * k]));
    EXPECT_TRUE(system.ObjectExists(all[2 * k + 1]));
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(TopologyTest, SelfReferenceThroughRemoteProxy) {
  // a@0 -> proxy@1 -> a@0: the minimal 2-site cycle where one site holds
  // both the inref and the outref for related objects.
  System system(2, Config());
  const ObjectId a = system.NewObject(0, 1);
  const ObjectId proxy = system.NewObject(1, 1);
  system.Wire(a, 0, proxy);
  system.Wire(proxy, 0, a);
  ExpectAllCollected(system, {a, proxy});
}

}  // namespace
}  // namespace dgc
