// Tests for the client-caching transactional mutator (§6.1.1's commit-time
// barrier model): fetch/read/write/commit semantics, barrier firing at
// commit, insert-barrier gating of the commit ack, and GC interaction.
#include <gtest/gtest.h>

#include "core/system.h"
#include "mutator/transaction.h"
#include "workload/builders.h"

namespace dgc {
namespace {

CollectorConfig Config() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  return config;
}

TEST(TransactionTest, FetchCachesRemoteCopy) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 2);
  const ObjectId child = system.NewObject(1, 0);
  system.Wire(obj, 0, child);
  workload::TetherToRoot(system, obj, 1);

  TransactionClient client(system, 0, 1);
  client.Fetch(obj);
  EXPECT_TRUE(client.IsCached(obj));
  EXPECT_EQ(client.ReadCached(obj, 0), child);
  EXPECT_EQ(client.ReadCached(obj, 1), kInvalidObject);
  // The fetched object and the read child are pinned at the client.
  EXPECT_GT(system.site(0).tables().FindOutref(obj)->pin_count, 0);
  EXPECT_GT(system.site(0).tables().FindOutref(child)->pin_count, 0);
}

TEST(TransactionTest, WritesInvisibleUntilCommit) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 1);
  workload::TetherToRoot(system, obj, 1);
  TransactionClient client(system, 0, 1);
  client.Fetch(obj);
  const ObjectId fresh = client.Create(0);
  client.Write(obj, 0, fresh);
  // Overlay visible to the client, not to the owner.
  EXPECT_EQ(client.ReadCached(obj, 0), fresh);
  EXPECT_EQ(system.site(1).heap().GetSlot(obj, 0), kInvalidObject);
  client.Commit();
  EXPECT_EQ(system.site(1).heap().GetSlot(obj, 0), fresh);
  // The owner registered its new inter-site reference (insert protocol).
  const InrefEntry* inref = system.site(0).tables().FindInref(fresh);
  ASSERT_NE(inref, nullptr);
  EXPECT_TRUE(inref->sources.contains(1));
}

TEST(TransactionTest, AbortDiscardsOverlay) {
  System system(2, Config());
  const ObjectId obj = system.NewObject(1, 1);
  workload::TetherToRoot(system, obj, 1);
  TransactionClient client(system, 0, 1);
  client.Fetch(obj);
  const ObjectId fresh = client.Create(0);
  client.Write(obj, 0, fresh);
  client.Abort();
  EXPECT_EQ(client.ReadCached(obj, 0), kInvalidObject);
  client.Commit();  // nothing to do
  EXPECT_EQ(system.site(1).heap().GetSlot(obj, 0), kInvalidObject);
}

TEST(TransactionTest, CommitSlicesGoToEachOwner) {
  System system(3, Config());
  const ObjectId a = system.NewObject(1, 1);
  const ObjectId b = system.NewObject(2, 1);
  workload::TetherToRoot(system, a, 1);
  workload::TetherToRoot(system, b, 2);
  TransactionClient client(system, 0, 1);
  client.Fetch(a);
  client.Fetch(b);
  const ObjectId fresh = client.Create(1);
  client.Write(a, 0, fresh);
  client.Write(b, 0, fresh);
  client.Write(fresh, 0, fresh);  // local slice too
  system.network().ResetStats();
  client.Commit();
  EXPECT_EQ(system.site(1).heap().GetSlot(a, 0), fresh);
  EXPECT_EQ(system.site(2).heap().GetSlot(b, 0), fresh);
  EXPECT_EQ(system.site(0).heap().GetSlot(fresh, 0), fresh);
  // Two remote commit slices + their acks (the local slice is a
  // self-delivery).
  EXPECT_EQ(system.network().stats().count_of<CommitMsg>(), 2u);
  EXPECT_EQ(system.network().stats().count_of<CommitAckMsg>(), 2u);
}

TEST(TransactionTest, CommitTimeBarrierCleansSuspectedTargets) {
  // A suspected (but live) object written at commit: the barrier must clean
  // its inref before the write applies.
  CollectorConfig config = Config();
  config.enable_back_tracing = false;
  System system(3, config);
  // Far-away live object on site 1 (distance 4 > D=2 via a remote chain).
  const ObjectId root = system.NewObject(2, 1);
  system.SetPersistentRoot(root);
  const ObjectId h1 = system.NewObject(0, 1);
  const ObjectId h2 = system.NewObject(2, 1);
  const ObjectId h3 = system.NewObject(0, 1);
  const ObjectId target = system.NewObject(1, 1);
  system.Wire(root, 0, h1);
  system.Wire(h1, 0, h2);
  system.Wire(h2, 0, h3);
  system.Wire(h3, 0, target);
  system.RunRounds(6);
  const InrefEntry* inref = system.site(1).tables().FindInref(target);
  ASSERT_NE(inref, nullptr);
  ASSERT_FALSE(inref->clean(config.suspicion_threshold));

  TransactionClient client(system, 0, 1);
  const auto hits_before = system.site(1).stats().transfer_barrier_hits;
  client.Fetch(target);  // fetch itself fires the barrier at the owner
  EXPECT_TRUE(inref->clean(config.suspicion_threshold));
  EXPECT_GT(system.site(1).stats().transfer_barrier_hits, hits_before);
  // (While the client pins the reference, the next trace reports distance 1
  // and the inref stays clean by distance — suspicion only returns after
  // the transaction ends.)
  const ObjectId fresh = client.Create(0);
  client.Write(target, 0, fresh);
  client.Commit();  // commit slice arrives: barrier checks run again
  EXPECT_TRUE(inref->clean(config.suspicion_threshold));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  client.EndTransaction();
  system.RunRounds(6);
  // After the pins drop, distances re-ripen and suspicion returns — but the
  // object is live (root chain) and must survive.
  EXPECT_TRUE(system.ObjectExists(target));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

TEST(TransactionTest, EndTransactionReleasesEverything) {
  System system(2, Config());
  const ObjectId shared = system.NewObject(1, 1);
  workload::TetherToRoot(system, shared, 1);
  TransactionClient client(system, 0, 1);
  client.Fetch(shared);
  const ObjectId fresh = client.Create(0);
  client.Write(shared, 0, fresh);
  client.Commit();
  client.EndTransaction();
  system.RunRounds(3);
  // fresh is reachable via shared: survives without the client's pins.
  EXPECT_TRUE(system.ObjectExists(fresh));
  // Unlink and collect.
  TransactionClient client2(system, 0, 2);
  client2.Fetch(shared);
  client2.Write(shared, 0, kInvalidObject);
  client2.Commit();
  client2.EndTransaction();
  system.RunRounds(4);
  EXPECT_FALSE(system.ObjectExists(fresh));
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

TEST(TransactionTest, UncommittedCreationsDieWithTheTransaction) {
  System system(1, Config());
  TransactionClient client(system, 0, 1);
  const ObjectId orphan = client.Create(0);
  client.EndTransaction();  // never published
  system.RunRound();
  EXPECT_FALSE(system.ObjectExists(orphan));
}

TEST(TransactionTest, TwoClientsBuildCrossSiteCycleThatIsLaterCollected) {
  // The full Thor story: two clients transactionally weave an inter-site
  // cycle into rooted catalogs, later unlink it; back tracing reclaims it.
  System system(2, Config());
  const ObjectId catalog0 = system.NewObject(0, 1);
  const ObjectId catalog1 = system.NewObject(1, 1);
  system.SetPersistentRoot(catalog0);
  system.SetPersistentRoot(catalog1);

  TransactionClient alice(system, 0, 1);
  alice.Fetch(catalog0);
  const ObjectId a = alice.Create(1);
  alice.Write(catalog0, 0, a);
  alice.Commit();
  alice.EndTransaction();

  TransactionClient bob(system, 1, 2);
  bob.Fetch(catalog1);
  bob.Fetch(catalog0);
  const ObjectId got_a = bob.ReadCached(catalog0, 0);
  ASSERT_EQ(got_a, a);
  const ObjectId b = bob.Create(1);
  bob.Write(b, 0, got_a);
  bob.Fetch(a);
  bob.Write(a, 0, b);  // cycle: a@0 <-> b@1
  bob.Write(catalog1, 0, b);
  bob.Commit();
  bob.EndTransaction();

  system.RunRounds(3);
  EXPECT_TRUE(system.ObjectExists(a));
  EXPECT_TRUE(system.ObjectExists(b));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();

  TransactionClient cleaner(system, 0, 3);
  cleaner.Fetch(catalog0);
  cleaner.Fetch(catalog1);
  cleaner.Write(catalog0, 0, kInvalidObject);
  cleaner.Write(catalog1, 0, kInvalidObject);
  cleaner.Commit();
  cleaner.EndTransaction();

  system.RunRounds(20);
  EXPECT_FALSE(system.ObjectExists(a));
  EXPECT_FALSE(system.ObjectExists(b));
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

}  // namespace
}  // namespace dgc
