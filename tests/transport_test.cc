// Transport-backend tests (label: transport): the sim/threaded differential
// — seeded open-loop runs must produce the same garbage verdicts and reclaim
// sets under both backends — plus chaos (crash-restart, partition outage)
// scenarios on the threaded backend under the twin oracles, thread-count
// reproducibility, engine counters, clock-sync semantics, and a
// data-race smoke hammering the MPSC inbox queue and two sites ping-ponging
// back calls with an eight-thread pool (the TSan targets).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "common/worker_pool.h"
#include "core/system.h"
#include "net/mpsc_queue.h"
#include "net/threaded_transport.h"
#include "sim/fault_plan.h"
#include "workload/builders.h"
#include "workload/scale.h"

namespace dgc {
namespace {

NetworkConfig ThreadedNet(std::size_t threads = 4) {
  NetworkConfig net;
  net.transport = TransportKind::kThreaded;
  net.transport_threads = threads;
  return net;
}

/// Every object currently stored anywhere, sorted — the run's survivor set.
std::vector<ObjectId> SurvivingObjects(const System& system) {
  std::vector<ObjectId> out;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    system.site(s).heap().ForEach(
        [&](ObjectId id, const Object&) { out.push_back(id); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- Sim/threaded differential ---------------------------------------------

struct OpenLoopOutcome {
  std::uint64_t spawned = 0;
  std::uint64_t severed = 0;
  std::uint64_t collected = 0;
  std::uint64_t reclaimed = 0;
  bool complete = false;
  std::vector<ObjectId> survivors;

  friend bool operator==(const OpenLoopOutcome&,
                         const OpenLoopOutcome&) = default;
};

/// The down-scaled 4-site open-loop scale smoke, run to full completeness so
/// the survivor set equals the truly-live set — which both backends must
/// agree on exactly (the driver's decision stream is open-loop and
/// collector-independent, so spawn/sever sets are identical by construction;
/// completeness then pins the reclaim set too).
OpenLoopOutcome RunOpenLoop(TransportKind kind, std::uint64_t seed,
                            SimTime round_stagger,
                            std::size_t mark_threads = 1,
                            bool incremental = false) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_threshold_increment = 2;
  config.mark_threads = mark_threads;
  config.incremental_trace = incremental;
  config.incremental_distance = incremental;
  NetworkConfig net;
  net.transport = kind;
  net.transport_threads = 4;
  System system(4, config, net, seed);

  workload::ScaleTopologySpec topo;
  topo.sites = 4;
  topo.objects_per_site = 500;
  topo.seed = seed;
  workload::InstantiateScaleTopology(system,
                                     workload::BuildScaleTopology(topo));

  workload::ScaleDriverSpec drive;
  drive.duration = 4'000;
  drive.mean_interarrival = 25;
  drive.mean_lifetime = 300;
  drive.round_period = 400;
  drive.round_stagger = round_stagger;
  drive.seed = seed + 100;
  workload::ScaleDriver driver(system, drive);
  driver.Run();

  OpenLoopOutcome out;
  out.complete = driver.Quiesce();
  // Quiesce stops once the driver's own cohorts are reclaimed; unrooted
  // topology objects may still be draining at a backend-dependent round
  // count. Run on to full completeness so the final state is canonical.
  for (int i = 0; i < 40 && !system.CheckCompleteness().empty(); ++i) {
    system.RunRound();
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
  out.spawned = driver.stats().cohorts_spawned;
  out.severed = driver.stats().cohorts_severed;
  out.collected = driver.stats().cohorts_collected;
  out.reclaimed = system.TotalObjectsReclaimed();
  out.survivors = SurvivingObjects(system);
  return out;
}

TEST(TransportDifferential, ThreadedMatchesSimAcrossTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const OpenLoopOutcome sim =
        RunOpenLoop(TransportKind::kSim, seed, /*round_stagger=*/3);
    const OpenLoopOutcome threaded =
        RunOpenLoop(TransportKind::kThreaded, seed, /*round_stagger=*/3);
    ASSERT_GT(sim.severed, 0u) << "seed " << seed;
    ASSERT_TRUE(sim.complete) << "seed " << seed;
    ASSERT_TRUE(threaded.complete) << "seed " << seed;
    ASSERT_EQ(sim, threaded) << "seed " << seed;
  }
}

// Same-instant rounds (stagger 0) put every site's trace into one parallel
// phase — the configuration the threaded backend's speedup comes from.
TEST(TransportDifferential, SameInstantRoundsMatchToo) {
  const OpenLoopOutcome sim =
      RunOpenLoop(TransportKind::kSim, 21, /*round_stagger=*/0);
  const OpenLoopOutcome threaded =
      RunOpenLoop(TransportKind::kThreaded, 21, /*round_stagger=*/0);
  ASSERT_GT(sim.severed, 0u);
  EXPECT_EQ(sim, threaded);
}

// Thread interleavings must not leak into results: staged sends replay in
// site order and all RNG draws happen on the coordinator, so any pool size
// produces the identical outcome.
TEST(TransportDifferential, ThreadedIsReproducibleAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    CollectorConfig config;
    config.suspicion_threshold = 2;
    NetworkConfig net = ThreadedNet(threads);
    System system(4, config, net, 5);
    workload::ScaleTopologySpec topo;
    topo.sites = 4;
    topo.objects_per_site = 300;
    topo.seed = 5;
    workload::InstantiateScaleTopology(system,
                                       workload::BuildScaleTopology(topo));
    workload::ScaleDriverSpec drive;
    drive.duration = 2'000;
    drive.seed = 13;
    workload::ScaleDriver driver(system, drive);
    driver.Run();
    driver.Quiesce();
    return std::tuple{driver.stats().mutations,
                      driver.stats().cohorts_collected,
                      system.TotalObjectsReclaimed(),
                      SurvivingObjects(system)};
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

// The full composition matrix: shard marking inside the site step
// (mark_threads-way nested fork/join on the transport pool), incremental
// trace/distance maintenance, and the engine choice must all be
// observationally invisible — every cell reproduces the sim/serial
// baseline's verdicts, reclaim totals, and survivor census bit for bit.
// (The socket column of this matrix lives in socket_test.cc; this binary
// carries the TSan-able legs.)
TEST(TransportDifferential, MarkThreadsByTransportByIncrementalMatrix) {
  constexpr std::size_t kMarkCounts[] = {1, 2, 8};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool incremental : {false, true}) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (incremental ? " incremental" : " baseline"));
      const OpenLoopOutcome baseline =
          RunOpenLoop(TransportKind::kSim, seed, /*round_stagger=*/3,
                      /*mark_threads=*/1, incremental);
      ASSERT_GT(baseline.severed, 0u);
      ASSERT_TRUE(baseline.complete);
      for (const std::size_t mark_threads : kMarkCounts) {
        for (const TransportKind kind :
             {TransportKind::kSim, TransportKind::kThreaded}) {
          if (kind == TransportKind::kSim && mark_threads == 1) continue;
          const OpenLoopOutcome cell = RunOpenLoop(
              kind, seed, /*round_stagger=*/3, mark_threads, incremental);
          ASSERT_EQ(baseline, cell)
              << (kind == TransportKind::kSim ? "sim" : "threaded")
              << " mark_threads=" << mark_threads;
        }
      }
    }
  }
}

// Sharded staged-send replay is a pure performance path: forcing the serial
// replay loop (transport_serial_replay) must change nothing observable,
// while the default path must actually take the sharded branch (counter
// proof, so a silently disabled optimization fails the test).
TEST(TransportDifferential, ShardedReplayMatchesSerialReplay) {
  auto run = [](bool serial_replay) {
    CollectorConfig config;
    config.suspicion_threshold = 2;
    NetworkConfig net = ThreadedNet(4);
    net.transport_serial_replay = serial_replay;
    System system(4, config, net, 23);
    workload::ScaleTopologySpec topo;
    topo.sites = 4;
    topo.objects_per_site = 300;
    topo.seed = 23;
    workload::InstantiateScaleTopology(system,
                                       workload::BuildScaleTopology(topo));
    workload::ScaleDriverSpec drive;
    drive.duration = 2'000;
    drive.round_stagger = 0;  // same-instant rounds: many busy senders
    drive.seed = 29;
    workload::ScaleDriver driver(system, drive);
    driver.Run();
    driver.Quiesce();
    return std::tuple{system.TotalObjectsReclaimed(),
                      SurvivingObjects(system),
                      system.transport().counters().staged_sends,
                      system.transport().counters().parallel_replays};
  };
  const auto sharded = run(/*serial_replay=*/false);
  const auto serial = run(/*serial_replay=*/true);
  EXPECT_EQ(std::get<0>(sharded), std::get<0>(serial));
  EXPECT_EQ(std::get<1>(sharded), std::get<1>(serial));
  EXPECT_EQ(std::get<2>(sharded), std::get<2>(serial));
  EXPECT_GT(std::get<3>(sharded), 0u) << "sharded path never taken";
  EXPECT_EQ(std::get<3>(serial), 0u) << "knob did not force serial replay";
}

// The deadlock shape the per-transport pool exists to prevent: every site
// thread forks a nested mark batch on the SAME pool. Caller participation
// guarantees progress even when all workers are busy; free workers join
// nested batches when the pool is over-provisioned.
TEST(WorkerPoolTest, NestedRunBatchFromEveryPoolTaskCompletes) {
  WorkerPool pool(3);  // fewer workers than outer tasks: full contention
  std::atomic<int> executed{0};
  pool.RunBatch(
      8,
      [&](std::size_t) {
        pool.RunBatch(
            16, [&](std::size_t) { executed.fetch_add(1); }, 16);
      },
      8);
  EXPECT_EQ(executed.load(), 8 * 16);
}

// And the transport-shaped version of the same guarantee: a threaded engine
// whose sites all fork mark_threads-way nested batches simultaneously
// (same-instant rounds, pool auto-sized from the nested hint).
TEST(WorkerPoolTest, ThreadedEngineWithNestedMarkBatchesCompletes) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.mark_threads = 8;
  System system(4, config, ThreadedNet(4), 31);
  const auto ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 4, .first_site = 0});
  for (int round = 0; round < 12; ++round) {
    system.RunRoundStaggered(/*stagger=*/0);
    if (system.CheckCompleteness().empty()) break;
  }
  for (const ObjectId id : ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
}

// --- Chaos on the threaded backend -----------------------------------------

bool NoStrandedTraceState(const System& system) {
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const BackTracer& bt = system.site(s).back_tracer();
    if (bt.active_frames() != 0 || bt.visit_record_count() != 0 ||
        bt.parked_call_count() != 0) {
      return false;
    }
  }
  return true;
}

/// Post-chaos recovery: rounds (with periodic clock advances so lazy
/// report-timeout expiry can run) until garbage-free with no stranded trace
/// state; safety is asserted after every round.
void RecoverUntilClean(System& system, std::size_t max_rounds) {
  const SimTime expiry = system.site(0).config().report_timeout +
                         system.site(0).config().back_call_timeout + 10;
  for (std::size_t i = 0; i < max_rounds; ++i) {
    system.RunRound();
    ASSERT_TRUE(system.CheckSafety().empty())
        << "round " << i << ": " << system.CheckSafety();
    if (system.CheckCompleteness().empty() && NoStrandedTraceState(system)) {
      return;
    }
    if (i % 8 == 7) system.AdvanceTime(expiry);
  }
}

/// Trace waves on each site's own scheduler, so under the threaded backend
/// they run on the site threads and genuinely interleave with the armed
/// fault plan's control-side events.
void ScheduleTraceWaves(System& system, SimTime start, std::size_t waves,
                        SimTime spacing, SimTime stagger) {
  for (std::size_t w = 0; w < waves; ++w) {
    for (SiteId s = 0; s < system.site_count(); ++s) {
      system.SchedulerFor(s).At(
          start + static_cast<SimTime>(w) * spacing +
              static_cast<SimTime>(s) * stagger,
          [&system, s] {
            if (!system.site(s).trace_in_flight()) {
              system.site(s).StartLocalTrace();
            }
          });
    }
  }
}

TEST(ThreadedChaos, CrashRestartMidCollectionRecovers) {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 6;
  config.update_refresh_period = 3;
  NetworkConfig net = ThreadedNet(4);
  net.latency = 5;
  net.latency_jitter = 6;
  net.reliable_delivery = true;
  net.heartbeat_period = 20;
  net.heartbeat_timeout = 80;
  System system(4, config, net, 7);

  const auto ring = workload::BuildCycle(
      system, {.sites = 4, .objects_per_site = 2, .first_site = 0});
  const auto live_ring = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 1, .first_site = 1});
  const ObjectId tether =
      workload::TetherToRoot(system, live_ring.head(), /*root_site=*/0);

  FaultPlan plan;
  plan.DropBurst(/*at=*/100, /*duration=*/400, /*drop_probability=*/0.5)
      .SiteOutage(/*at=*/200, /*site=*/1, /*duration=*/400,
                  /*crash_restart=*/true)
      .LinkFlap(/*at=*/700, /*a=*/2, /*b=*/3, /*duration=*/200)
      .LatencySpike(/*at=*/900, /*duration=*/300, /*extra_latency=*/40);
  system.ArmFaultPlan(plan);

  ScheduleTraceWaves(system, /*start=*/50, /*waves=*/26, /*spacing=*/150,
                     /*stagger=*/15);
  system.SettleNetwork();
  ASSERT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();

  RecoverUntilClean(system, /*max_rounds=*/60);

  EXPECT_EQ(system.network().incarnation(1), 1u);
  for (const ObjectId id : ring.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  for (const ObjectId id : live_ring.objects) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(tether));
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
}

TEST(ThreadedChaos, PartitionOutageHealsAndCollects) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.update_refresh_period = 3;
  NetworkConfig net = ThreadedNet(4);
  net.latency = 3;
  net.reliable_delivery = true;
  System system(4, config, net, 9);

  const auto garbage = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 1, .first_site = 0});
  const auto live_ring = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 2});
  const ObjectId tether =
      workload::TetherToRoot(system, live_ring.head(), /*root_site=*/3);

  FaultPlan plan;
  plan.SiteOutage(/*at=*/60, /*site=*/2, /*duration=*/300)
      .LinkFlap(/*at=*/120, /*a=*/0, /*b=*/1, /*duration=*/240);
  system.ArmFaultPlan(plan);

  ScheduleTraceWaves(system, /*start=*/30, /*waves=*/10, /*spacing=*/80,
                     /*stagger=*/7);
  system.SettleNetwork();
  ASSERT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();

  RecoverUntilClean(system, /*max_rounds=*/40);
  for (const ObjectId id : garbage.objects) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  for (const ObjectId id : live_ring.objects) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(tether));
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
}

// --- Engine semantics -------------------------------------------------------

TEST(TransportTest, SimIsTheDefaultAndItsCountersStayZero) {
  System system(3);
  EXPECT_EQ(system.transport().kind(), TransportKind::kSim);
  const auto ring = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 1, .first_site = 0});
  system.RunRounds(3);
  const TransportCounters counters = system.transport().counters();
  EXPECT_EQ(counters.timesteps, 0u);
  EXPECT_EQ(counters.handoffs, 0u);
  EXPECT_EQ(counters.staged_sends, 0u);
  EXPECT_EQ(system.site(0).stats().transport_handoffs, 0u);
}

TEST(TransportTest, ThreadedClockStaysInSyncAcrossSchedulers) {
  System system(3, CollectorConfig{}, ThreadedNet(2), 3);
  EXPECT_EQ(system.transport().kind(), TransportKind::kThreaded);
  system.AdvanceTime(137);
  EXPECT_EQ(system.now(), 137);
  EXPECT_EQ(system.scheduler().now(), 137);
  for (SiteId s = 0; s < system.site_count(); ++s) {
    EXPECT_EQ(system.SchedulerFor(s).now(), 137) << "site " << s;
  }
  system.SettleNetwork();
  for (SiteId s = 0; s < system.site_count(); ++s) {
    EXPECT_EQ(system.SchedulerFor(s).now(), system.now()) << "site " << s;
  }
}

// The data-race smoke of the TSan suite: two sites ping-pong back-trace
// calls through the engine with an eight-thread pool while garbage rings
// collect; every counter surface is read afterwards.
TEST(ThreadedTransportTest, TwoSitePingPongBackCallsAtEightThreads) {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_threshold_increment = 2;
  System system(2, config, ThreadedNet(8), 11);

  std::vector<ObjectId> garbage;
  for (int i = 0; i < 6; ++i) {
    const auto ring = workload::BuildCycle(
        system, {.sites = 2, .objects_per_site = 2, .first_site = 0});
    garbage.insert(garbage.end(), ring.objects.begin(), ring.objects.end());
  }
  const auto live_ring = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  const ObjectId tether =
      workload::TetherToRoot(system, live_ring.head(), /*root_site=*/1);

  // Same-instant rounds: both sites trace in one parallel phase, and every
  // back-trace step ping-pongs through the inboxes.
  for (int round = 0; round < 16; ++round) {
    system.RunRoundStaggered(/*stagger=*/0);
    ASSERT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
    if (system.CheckCompleteness().empty()) break;
  }
  for (const ObjectId id : garbage) {
    EXPECT_FALSE(system.ObjectExists(id)) << id;
  }
  for (const ObjectId id : live_ring.objects) {
    EXPECT_TRUE(system.ObjectExists(id)) << id;
  }
  EXPECT_TRUE(system.ObjectExists(tether));
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();

  const TransportCounters counters = system.transport().counters();
  EXPECT_GT(counters.timesteps, 0u);
  EXPECT_GT(counters.parallel_phases, 0u);
  EXPECT_GT(counters.site_steps, 0u);
  EXPECT_GT(counters.handoffs, 0u);
  EXPECT_GT(counters.staged_sends, 0u);
  EXPECT_GE(counters.inbox_peak_depth, 1u);
  // The per-site slices sum to (or bound) the engine totals, and the
  // SiteStats mirror matches the transport's own accounting.
  std::uint64_t handoffs = 0;
  std::uint64_t staged = 0;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const SiteTransportCounters site = system.transport().site_counters(s);
    handoffs += site.handoffs;
    staged += site.staged_sends;
    EXPECT_EQ(system.site(s).stats().transport_handoffs, site.handoffs);
    EXPECT_EQ(system.site(s).stats().transport_staged_sends,
              site.staged_sends);
    EXPECT_EQ(system.site(s).stats().transport_queue_peak,
              site.queue_peak_depth);
  }
  EXPECT_EQ(handoffs, counters.handoffs);
  EXPECT_EQ(staged, counters.staged_sends);
}

// --- MPSC inbox queue -------------------------------------------------------

// Eight producers hammer one queue while a consumer drains it — the raw
// data-race smoke for the inbox (run under TSan via the transport label).
// Per-producer FIFO must hold: each producer's items pop in push order.
TEST(MpscQueueTest, EightProducerHammerPreservesPerProducerFifo) {
  constexpr std::size_t kProducers = 8;
  constexpr std::uint32_t kPerProducer = 2'000;
  MpscQueue<Envelope> queue(/*soft_capacity=*/64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        Envelope e;
        e.from = static_cast<SiteId>(p);  // producer id
        e.to = i;                         // per-producer sequence number
        queue.Push(std::move(e));
      }
    });
  }

  std::vector<std::uint32_t> next_expected(kProducers, 0);
  std::size_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    Envelope e;
    if (!queue.TryPop(e)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(e.from, kProducers);
    ASSERT_EQ(e.to, next_expected[e.from]) << "producer " << e.from;
    ++next_expected[e.from];
    ++popped;
  }
  for (auto& t : producers) t.join();

  EXPECT_TRUE(queue.Empty());
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushes, kProducers * kPerProducer);
  EXPECT_EQ(stats.pops, kProducers * kPerProducer);
  EXPECT_GE(stats.peak_depth, 1u);
}

TEST(MpscQueueTest, SoftCapacityCountsOverflowsInsteadOfBlocking) {
  MpscQueue<int> queue(/*soft_capacity=*/4);
  for (int i = 0; i < 10; ++i) queue.Push(i);
  EXPECT_EQ(queue.depth(), 10u);  // soft bound: everything admitted
  EXPECT_EQ(queue.stats().overflows, 6u);
  int out = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(out));
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace dgc
