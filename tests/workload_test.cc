// Tests for the workload generators themselves: the graphs they claim to
// build are the graphs they build.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/builders.h"
#include "workload/figures.h"

namespace dgc {
namespace {

TEST(BuildCycleTest, RingOrderAndTables) {
  System system(3);
  const auto cycle = workload::BuildCycle(
      system, {.sites = 3, .objects_per_site = 2, .first_site = 0});
  ASSERT_EQ(cycle.objects.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const ObjectId from = cycle.objects[i];
    const ObjectId to = cycle.objects[(i + 1) % 6];
    EXPECT_EQ(system.site(from.site).heap().GetSlot(from, 0), to);
    if (from.site != to.site) {
      EXPECT_NE(system.site(from.site).tables().FindOutref(to), nullptr);
      const InrefEntry* inref = system.site(to.site).tables().FindInref(to);
      ASSERT_NE(inref, nullptr);
      EXPECT_TRUE(inref->sources.contains(from.site));
    }
  }
}

TEST(BuildCycleTest, FirstSiteOffset) {
  System system(4);
  const auto cycle = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 2});
  EXPECT_EQ(cycle.objects[0].site, 2u);
  EXPECT_EQ(cycle.objects[1].site, 3u);
}

TEST(TetherTest, RootKeepsTargetAlive) {
  System system(2);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const ObjectId tether = workload::TetherToRoot(system, cycle.head(), 0);
  const auto live = system.ComputeLiveSet();
  EXPECT_TRUE(live.contains(tether));
  EXPECT_TRUE(live.contains(cycle.objects[0]));
  EXPECT_TRUE(live.contains(cycle.objects[1]));
}

TEST(AttachChainTest, ChainHopsSitesAndLinks) {
  System system(3);
  const ObjectId head = system.NewObject(0, 1);
  const auto chain = workload::AttachChain(system, head, 0, 4);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(system.site(0).heap().GetSlot(head, 0), chain[0]);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    EXPECT_EQ(system.site(chain[i].site).heap().GetSlot(chain[i], 0),
              chain[i + 1]);
  }
}

TEST(RandomGraphTest, RespectsSpecAndKeepsTablesConsistent) {
  System system(4);
  Rng rng(42);
  workload::RandomGraphSpec spec;
  spec.sites = 4;
  spec.objects_per_site = 25;
  spec.slots_per_object = 3;
  const auto objects = workload::BuildRandomGraph(system, spec, rng);
  EXPECT_EQ(objects.size(), 100u);
  EXPECT_EQ(system.TotalObjects(), 100u);
  EXPECT_TRUE(system.CheckReferentialIntegrity().empty())
      << system.CheckReferentialIntegrity();
}

TEST(RandomGraphTest, RemoteFractionZeroMeansNoOutrefs) {
  System system(4);
  Rng rng(7);
  workload::RandomGraphSpec spec;
  spec.sites = 4;
  spec.objects_per_site = 20;
  spec.remote_edge_fraction = 0.0;
  workload::BuildRandomGraph(system, spec, rng);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_TRUE(system.site(s).tables().outrefs().empty());
  }
}

TEST(HypertextTest, RootedAndUnrootedGroupsAreSeparate) {
  System system(4);
  Rng rng(9);
  workload::HypertextSpec spec;
  spec.sites = 4;
  spec.documents = 12;
  spec.rooted_fraction = 0.5;
  const auto web = workload::BuildHypertextWeb(system, spec, rng);
  EXPECT_EQ(web.documents.size(), 12u);
  const auto live = system.ComputeLiveSet();
  for (std::size_t d = 0; d < 12; ++d) {
    const bool rooted = d < 6;
    EXPECT_EQ(live.contains(web.documents[d]), rooted) << "document " << d;
  }
  // The unrooted half forms at least one inter-site cycle (its ring spans
  // sites round-robin).
  std::set<SiteId> unrooted_sites;
  for (std::size_t d = 6; d < 12; ++d) {
    unrooted_sites.insert(web.documents[d].site);
  }
  EXPECT_GT(unrooted_sites.size(), 1u);
}

TEST(HypertextTest, UnrootedWebIsEventuallyCollected) {
  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 8;
  System system(4, config);
  Rng rng(11);
  workload::HypertextSpec spec;
  spec.sites = 4;
  spec.documents = 8;
  spec.sections_per_document = 2;
  spec.rooted_fraction = 0.5;
  const auto web = workload::BuildHypertextWeb(system, spec, rng);
  const std::size_t live_count = system.ComputeLiveSet().size();
  system.RunRounds(40);
  EXPECT_EQ(system.TotalObjects(), live_count);
  EXPECT_TRUE(system.CheckSafety().empty()) << system.CheckSafety();
  EXPECT_TRUE(system.CheckCompleteness().empty())
      << system.CheckCompleteness();
  (void)web;
}

TEST(FigureWorldsTest, Figure1TablesMatchPaper) {
  System system(3);
  const auto w = workload::BuildFigure1(system);
  // P's outrefs: b and c. Q's: c, e, g. R's: f.
  EXPECT_NE(system.site(0).tables().FindOutref(w.b), nullptr);
  EXPECT_NE(system.site(0).tables().FindOutref(w.c), nullptr);
  EXPECT_NE(system.site(1).tables().FindOutref(w.c), nullptr);
  EXPECT_NE(system.site(1).tables().FindOutref(w.e), nullptr);
  EXPECT_NE(system.site(1).tables().FindOutref(w.g), nullptr);
  EXPECT_NE(system.site(2).tables().FindOutref(w.f), nullptr);
  // R's inref for c lists sources P and Q (the paper's worked example).
  const InrefEntry* inref_c = system.site(2).tables().FindInref(w.c);
  ASSERT_NE(inref_c, nullptr);
  EXPECT_TRUE(inref_c->sources.contains(0));
  EXPECT_TRUE(inref_c->sources.contains(1));
}

TEST(FigureWorldsTest, Figure5LiveSetMatchesNarrative) {
  System system(4);
  const auto w = workload::BuildFigure5(system, /*with_second_source=*/false);
  const auto live = system.ComputeLiveSet();
  // Everything is reachable from root a along the old path.
  for (const ObjectId id : {w.a, w.b, w.y, w.z, w.x, w.f, w.c, w.e, w.d, w.g}) {
    EXPECT_TRUE(live.contains(id)) << id;
  }
  // Figure 6 variant adds the second source of inref g.
  System system6(4);
  const auto w6 = workload::BuildFigure5(system6, /*with_second_source=*/true);
  const InrefEntry* inref_g = system6.site(0).tables().FindInref(w6.g);
  ASSERT_NE(inref_g, nullptr);
  EXPECT_EQ(inref_g->sources.size(), 2u);
}

}  // namespace
}  // namespace dgc
